// Energy comparison (beyond the paper's performance-only evaluation): the
// first-order energy model of sim/energy.h applied to every run-time system
// on a 2 PRC + 2 CG machine, plus mRTS across fabric sizes. Reported to
// sanity-check that the performance wins do not come at absurd
// reconfiguration-energy cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "sim/energy.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

void BM_Energy_Mrts(benchmark::State& state) {
  const EvalContext& ctx = context();
  for (auto _ : state) {
    MRts rts(ctx.app.library, 2, 2);
    const AppRunResult run = run_application(rts, ctx.app.trace);
    const EnergyBreakdown e =
        estimate_energy(run, rts.fabric().reconfig_stats());
    state.counters["total_mJ"] = e.total_mj();
    state.counters["reconfig_mJ"] = e.reconfiguration_mj;
  }
}
BENCHMARK(BM_Energy_Mrts)->Iterations(1)->Unit(benchmark::kMillisecond);

void print_table() {
  const EvalContext& ctx = context();
  TextTable table({"system", "Mcycles", "exec [mJ]", "reconfig [mJ]",
                   "leakage [mJ]", "total [mJ]", "EDP [mJ*Mcyc]"});
  CsvWriter csv("energy.csv");
  csv.write_header({"system", "cycles", "execution_mj", "reconfiguration_mj",
                    "leakage_mj", "total_mj", "edp"});

  auto report = [&](const std::string& name, const AppRunResult& run,
                    const ReconfigStats& stats) {
    const EnergyBreakdown e = estimate_energy(run, stats);
    table.add_values(name, format_mcycles(run.total_cycles),
                     format_double(e.execution_mj, 2),
                     format_double(e.reconfiguration_mj, 2),
                     format_double(e.leakage_mj, 2),
                     format_double(e.total_mj(), 2),
                     format_double(e.edp(run.total_cycles), 2));
    csv.write_values(name, run.total_cycles, e.execution_mj,
                     e.reconfiguration_mj, e.leakage_mj, e.total_mj(),
                     e.edp(run.total_cycles));
  };

  {
    RiscOnlyRts rts(ctx.app.library);
    report("RISC-only", run_application(rts, ctx.app.trace), ReconfigStats{});
  }
  {
    RisppRts rts(ctx.app.library, 2, 2);
    const AppRunResult run = run_application(rts, ctx.app.trace);
    report("RISPP-like", run, rts.fabric().reconfig_stats());
  }
  {
    Morpheus4sRts rts(ctx.app.library, 2, 2, ctx.profile);
    const AppRunResult run = run_application(rts, ctx.app.trace);
    report("Morpheus+4S-like", run, rts.fabric().reconfig_stats());
  }
  {
    OfflineOptimalRts rts(ctx.app.library, 2, 2, ctx.profile);
    const AppRunResult run = run_application(rts, ctx.app.trace);
    report("Offline-optimal", run, rts.fabric().reconfig_stats());
  }
  {
    MRts rts(ctx.app.library, 2, 2);
    const AppRunResult run = run_application(rts, ctx.app.trace);
    report("mRTS (2 PRC + 2 CG)", run, rts.fabric().reconfig_stats());
  }
  for (unsigned size : {1u, 3u}) {
    MRts rts(ctx.app.library, size, size);
    const AppRunResult run = run_application(rts, ctx.app.trace);
    report("mRTS (" + std::to_string(size) + " PRC + " +
               std::to_string(size) + " CG)",
           run, rts.fabric().reconfig_stats());
  }

  std::printf("\nEnergy model (beyond the paper; written to energy.csv)\n%s",
              table.render().c_str());

  // Traffic summary for the mRTS run.
  MRts rts(ctx.app.library, 2, 2);
  run_application(rts, ctx.app.trace);
  const ReconfigStats& s = rts.fabric().reconfig_stats();
  std::printf(
      "mRTS reconfiguration traffic: %llu FG bitstreams (%.2f MB), %llu CG "
      "contexts (%.1f KB), %llu loads avoided by reuse, %llu cancelled.\n",
      static_cast<unsigned long long>(s.fg_loads),
      static_cast<double>(s.fg_bytes) / 1e6,
      static_cast<unsigned long long>(s.cg_loads),
      static_cast<double>(s.cg_bytes) / 1e3,
      static_cast<unsigned long long>(s.reused_instances),
      static_cast<unsigned long long>(s.cancelled_loads));
}

}  // namespace

int main(int argc, char** argv) {
  (void)mrts::bench::parse_jobs(&argc, argv);  // strips --no-bb-cache too
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
