// Fig. 11 (extension beyond the paper): mRTS speedup vs fault rate. The
// paper's machine assumes perfect silicon; this harness sweeps the uniform
// fault rate of the deterministic injector (arch/fault_model.h) on a fixed
// 4 PRC + 2 CG fabric and reports how gracefully the ECU degradation ladder
// gives the speedup back. Expected shape: the fault-free point matches
// Fig. 8's 4/2 combination; rising rates cost cycles through CRC retries,
// scrub repairs and quarantines; at rate 1.0 every container quarantines on
// first touch and the run converges to RISC-only (speedup 1.0x).
//
// The sweep fans out over a SweepRunner (--jobs N); every point builds its
// own simulator stack (own MRts, own FaultModel seeded from --fault-seed),
// and results merge in submission order, so the table and CSV are
// byte-identical to `--jobs 1`. --fault-seed/--max-retries apply to every
// point; --fault-rate is ignored here (the rate axis IS the figure).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace mrts;
using namespace mrts::bench;

/// The fabric under test: the mid-size 4 PRC + 2 CG machine (Fig. 8's
/// best-scaling column).
constexpr unsigned kPrcs = 4;
constexpr unsigned kCgFabrics = 2;

const EvalContext& context() {
  static const EvalContext ctx;
  return ctx;
}

/// --fault-seed / --max-retries for every sweep point. Set once in main()
/// before the fan-out, read-only afterwards.
FaultFlags& fault_flags() {
  static FaultFlags flags;
  return flags;
}

/// The fault-rate axis. Rate 0 is the baseline row (must match the
/// fault-free fig8 4/2 point); rate 1.0 is the all-quarantined endpoint.
const std::vector<double>& rates() {
  static const std::vector<double> r = {0.0,  0.01, 0.02, 0.05,
                                        0.10, 0.20, 0.50, 1.00};
  return r;
}

struct PointResult {
  Cycles mrts_cycles = 0;
  FaultStats faults;
  CounterRegistry counters;
};

std::map<double, PointResult>& points() {
  static std::map<double, PointResult> p;
  return p;
}

/// One independent sweep point: a full-application mRTS run with the
/// injector at \p rate. Each point owns its RTS, fabric, fault model and
/// counter registry; EvalContext is shared read-only.
PointResult run_point(double rate) {
  const EvalContext& ctx = context();
  PointResult result;
  MRtsConfig config;
  if (rate > 0.0) {
    config.fault = FaultModelConfig::uniform(rate, fault_flags().seed,
                                             fault_flags().max_retries);
  }
  MRts rts(ctx.app.library, kCgFabrics, kPrcs, config);
  static_cast<RuntimeSystem&>(rts).attach_observability(nullptr,
                                                        &result.counters);
  result.mrts_cycles = run_application(rts, ctx.app.trace).total_cycles;
  if (rts.fault_model() != nullptr) result.faults = rts.fault_model()->stats();
  return result;
}

void run_sweep(unsigned jobs) {
  (void)context();  // build the shared workload once, before the fan-out
  timed_sweep("Fault sweep", jobs, [](const SweepRunner& runner) {
    const std::vector<PointResult> results = runner.map(rates(), run_point);
    for (std::size_t i = 0; i < rates().size(); ++i) {
      points()[rates()[i]] = results[i];
    }
  });
}

/// Reporting stub: the heavy work happened in run_sweep(); this publishes
/// each rate's cycles/speedup under BM_FaultSweep/<permille> names.
void BM_FaultSweep_Rate(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  const PointResult& point = points()[rate];
  for (auto _ : state) {
    benchmark::DoNotOptimize(point.mrts_cycles);
  }
  state.counters["mrts_Mcycles"] =
      static_cast<double>(point.mrts_cycles) / 1e6;
  state.counters["speedup_vs_risc"] =
      speedup(context().risc_cycles, point.mrts_cycles);
  state.counters["faults_injected"] =
      static_cast<double>(point.faults.injected);
}

void register_benchmarks() {
  for (double rate : rates()) {
    const long permille = static_cast<long>(rate * 1000.0 + 0.5);
    benchmark::RegisterBenchmark(
        ("BM_FaultSweep/rate_" + std::to_string(permille) + "permille")
            .c_str(),
        BM_FaultSweep_Rate)
        ->Args({permille})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_figure() {
  TextTable table({"fault rate", "mRTS [Mcyc]", "vs RISC", "vs fault-free",
                   "injected", "retries", "failed loads", "scrub repairs",
                   "quarantined"});
  CsvWriter csv("fig11_speedup_vs_fault_rate.csv");
  csv.write_header({"fault_rate", "mrts_cycles", "speedup_vs_risc",
                    "speedup_vs_fault_free", "faults_injected",
                    "load_failures", "retries", "failed_loads",
                    "transient_upsets", "scrub_repairs", "quarantined_prcs",
                    "quarantined_cg"});

  const Cycles risc = context().risc_cycles;
  const Cycles fault_free = points()[0.0].mrts_cycles;
  for (double rate : rates()) {
    const PointResult& p = points()[rate];
    const FaultStats& f = p.faults;
    const double vs_risc = speedup(risc, p.mrts_cycles);
    const double vs_ff = speedup(fault_free, p.mrts_cycles);
    table.add_values(format_double(rate, 2), format_mcycles(p.mrts_cycles),
                     vs_risc, vs_ff, f.injected, f.retries, f.failed_loads,
                     f.scrub_repairs, f.quarantined_prcs + f.quarantined_cg);
    csv.write_values(format_double(rate, 2), p.mrts_cycles, vs_risc, vs_ff,
                     f.injected, f.load_failures, f.retries, f.failed_loads,
                     f.transient_upsets, f.scrub_repairs, f.quarantined_prcs,
                     f.quarantined_cg);
  }
  std::printf("\nFig. 11 — mRTS speedup vs fault rate on %u PRCs + %u CG "
              "(seed %llu, written to fig11_speedup_vs_fault_rate.csv)\n%s",
              kPrcs, kCgFabrics,
              static_cast<unsigned long long>(fault_flags().seed),
              table.render().c_str());
  std::printf(
      "fault-free speedup %.2fx; rate-1.0 endpoint %.2fx (expected: "
      "quarantine everything, converge to RISC ~1.0x)\n",
      speedup(risc, fault_free),
      speedup(risc, points()[1.0].mrts_cycles));
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = parse_jobs(&argc, argv);
  fault_flags() = parse_fault_flags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  run_sweep(jobs);
  register_benchmarks();
  ::benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
