// Tests for the cross-block reconfiguration lookahead (extension beyond the
// paper): speculative prefetch into leftover fabric, predictor behaviour and
// the guarantee that speculation never disturbs the live selection.

#include <gtest/gtest.h>

#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

H264AppParams small_params() {
  H264AppParams p;
  p.frames = 4;
  p.macroblocks = 200;
  return p;
}

TEST(Lookahead, PrefetchesAfterOneRoundOfBlocks) {
  const H264Application app = build_h264_application(small_params());
  MRtsConfig cfg;
  cfg.enable_lookahead = true;
  MRts rts(app.library, 3, 3, cfg);
  const AppRunResult r = run_application(rts, app.trace);
  (void)r;
  // After the first frame the ME->EE->LF->ME cycle is known; speculative
  // loads must have been issued.
  EXPECT_GT(rts.run_stats().lookahead_prefetches, 0u);
}

TEST(Lookahead, NeverSlowerThanBaselineOnCyclicWorkload) {
  const H264Application app = build_h264_application(small_params());
  MRts base(app.library, 3, 3);
  const Cycles base_cycles = run_application(base, app.trace).total_cycles;
  MRtsConfig cfg;
  cfg.enable_lookahead = true;
  MRts ahead(app.library, 3, 3, cfg);
  const Cycles ahead_cycles = run_application(ahead, app.trace).total_cycles;
  // The block sequence is perfectly cyclic, so predictions are always right;
  // warming idle fabric must not hurt (allow 2% tolerance for second-order
  // effects: speculative loads occupy the FG port).
  EXPECT_LE(ahead_cycles, base_cycles + base_cycles / 50);
}

TEST(Lookahead, PrefetchLeavesReservationsIntact) {
  DataPathTable table;
  DataPathDesc fg1;
  fg1.name = "fg1";
  fg1.grain = Grain::kFine;
  const DataPathId fg1_id = table.add(fg1);
  DataPathDesc fg2;
  fg2.name = "fg2";
  fg2.grain = Grain::kFine;
  const DataPathId fg2_id = table.add(fg2);

  FabricManager fm(1, 2, &table);
  fm.install({{IseId{0}, KernelId{0}, {fg1_id}}}, 0);
  const FabricUsage before = fm.usage();

  // Prefetch a future data path: it must land on the unreserved PRC.
  const std::size_t started =
      fm.prefetch({{IseId{1}, KernelId{1}, {fg2_id}}}, 100);
  EXPECT_EQ(started, 1u);
  const FabricUsage after = fm.usage();
  EXPECT_EQ(after.reserved_prcs, before.reserved_prcs);
  // fg1 is untouched; fg2 is loading.
  EXPECT_EQ(fm.instance_ready_times(fg1_id).size(), 1u);
  EXPECT_EQ(fm.instance_ready_times(fg2_id).size(), 1u);

  // No room left: a second prefetch finds no victim.
  DataPathDesc fg3;
  fg3.name = "fg3";
  fg3.grain = Grain::kFine;
  const DataPathId fg3_id = table.add(fg3);
  // fg2 occupies the only unreserved PRC but is NOT reserved, so it may be
  // overwritten by a later prefetch round; the reserved fg1 may not.
  const std::size_t second =
      fm.prefetch({{IseId{2}, KernelId{2}, {fg3_id}}}, 200);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(fm.instance_ready_times(fg1_id).size(), 1u)
      << "the reserved data path must never be evicted by speculation";
}

TEST(Lookahead, AlreadyLoadedDataPathsAreSkipped) {
  DataPathTable table;
  DataPathDesc fg1;
  fg1.name = "fg1";
  fg1.grain = Grain::kFine;
  const DataPathId fg1_id = table.add(fg1);
  FabricManager fm(0, 2, &table);
  fm.install({{IseId{0}, KernelId{0}, {fg1_id}}}, 0);
  EXPECT_EQ(fm.prefetch({{IseId{0}, KernelId{0}, {fg1_id}}}, 10), 0u);
}

TEST(Lookahead, DisabledByDefault) {
  const H264Application app = build_h264_application(small_params());
  MRts rts(app.library, 2, 2);
  run_application(rts, app.trace);
  EXPECT_EQ(rts.run_stats().lookahead_prefetches, 0u);
}

}  // namespace
}  // namespace mrts
