// Tests for the mrts.wire.v1 codec (serve/wire.h): per-frame-type encode/
// decode round-trips, the exact byte layout docs/PROTOCOL.md documents
// (field offsets, endianness, CRC coverage), the incremental FrameDecoder
// under arbitrary feed fragmentation, and the hardening contract — bad
// magic / version / length / CRC poison the decoder, malformed payloads
// reject only that frame, and seeded random garbage never crashes and never
// partially applies a frame.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.h"
#include "util/rng.h"

namespace mrts::serve {
namespace {

// ---------------------------------------------------------------------------
// Frame header layout — pinned byte for byte against docs/PROTOCOL.md.
// ---------------------------------------------------------------------------

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t read_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

TEST(WireHeader, LayoutMatchesProtocolDoc) {
  PollFrame poll;
  poll.job_id = 0x1122334455667788ull;
  const std::vector<std::uint8_t> frame = encode(poll);
  ASSERT_GE(frame.size(), kFrameHeaderSize);

  // offset 0, 4 bytes: magic "mRTW".
  EXPECT_EQ(frame[0], 0x6D);  // 'm'
  EXPECT_EQ(frame[1], 0x52);  // 'R'
  EXPECT_EQ(frame[2], 0x54);  // 'T'
  EXPECT_EQ(frame[3], 0x57);  // 'W'
  // offset 4, u16 LE: wire version 1.
  EXPECT_EQ(read_le16(frame.data() + 4), kWireVersion);
  // offset 6, u8: frame type.
  EXPECT_EQ(frame[6], static_cast<std::uint8_t>(FrameType::kPoll));
  // offset 7, u8: flags, must be 0 in v1.
  EXPECT_EQ(frame[7], 0);
  // offset 8, u32 LE: payload length (POLL payload = one u64).
  EXPECT_EQ(read_le32(frame.data() + 8), 8u);
  EXPECT_EQ(frame.size(), kFrameHeaderSize + 8);
  // offset 12, u32 LE: CRC over header bytes [4, 12) + payload.
  EXPECT_EQ(read_le32(frame.data() + 12), frame_crc(frame.data(), 8));
  // offset 16: payload. The u64 job id is little-endian.
  EXPECT_EQ(frame[16], 0x88);
  EXPECT_EQ(frame[23], 0x11);
}

TEST(WireHeader, CrcCoversVersionTypeFlagsLengthAndPayload) {
  const std::vector<std::uint8_t> frame = encode(PollFrame{42});
  // Flipping any covered byte must change the CRC; flipping the magic does
  // not (the magic is outside CRC coverage — it is checked literally).
  for (std::size_t i = 4; i < frame.size(); ++i) {
    if (i >= 12 && i < 16) continue;  // the CRC field itself
    std::vector<std::uint8_t> copy = frame;
    copy[i] ^= 0xFF;
    EXPECT_NE(read_le32(copy.data() + 12),
              frame_crc(copy.data(), copy.size() - kFrameHeaderSize))
        << "byte " << i << " not covered by CRC";
  }
  std::vector<std::uint8_t> magic_flip = frame;
  magic_flip[0] ^= 0xFF;
  EXPECT_EQ(read_le32(magic_flip.data() + 12),
            frame_crc(magic_flip.data(), magic_flip.size() - kFrameHeaderSize));
}

// ---------------------------------------------------------------------------
// Round-trips: every frame type encodes and decodes back field for field.
// ---------------------------------------------------------------------------

Frame framed(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(decoder.buffered(), 0u);
  return out;
}

TEST(WireRoundTrip, Hello) {
  HelloFrame in;
  in.client_version = 7;
  in.client_name = "loadgen-3";
  HelloFrame out;
  ASSERT_TRUE(decode(framed(encode(in)), &out));
  EXPECT_EQ(out.client_version, 7);
  EXPECT_EQ(out.client_name, "loadgen-3");
}

TEST(WireRoundTrip, HelloOk) {
  HelloOkFrame in;
  in.server_version = 1;
  in.session_id = 9;
  in.prcs = 6;
  in.cg = 2;
  in.job_classes = 4;
  in.banner = "mrts_serve";
  HelloOkFrame out;
  ASSERT_TRUE(decode(framed(encode(in)), &out));
  EXPECT_EQ(out.server_version, 1);
  EXPECT_EQ(out.session_id, 9u);
  EXPECT_EQ(out.prcs, 6u);
  EXPECT_EQ(out.cg, 2u);
  EXPECT_EQ(out.job_classes, 4u);
  EXPECT_EQ(out.banner, "mrts_serve");
}

TEST(WireRoundTrip, Submit) {
  SubmitFrame in;
  in.name = "tenant_a.1-x";
  in.share = static_cast<std::uint8_t>(WireShare::kReserved);
  in.weight = 3;
  in.reserved_prcs = 2;
  in.reserved_cg = 1;
  in.priority = 17;
  in.job_class = 3;
  in.blocks = 5;
  in.seed = 0xDEADBEEFCAFEF00Dull;
  SubmitFrame out;
  ASSERT_TRUE(decode(framed(encode(in)), &out));
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.share, in.share);
  EXPECT_EQ(out.weight, in.weight);
  EXPECT_EQ(out.reserved_prcs, in.reserved_prcs);
  EXPECT_EQ(out.reserved_cg, in.reserved_cg);
  EXPECT_EQ(out.priority, in.priority);
  EXPECT_EQ(out.job_class, in.job_class);
  EXPECT_EQ(out.blocks, in.blocks);
  EXPECT_EQ(out.seed, in.seed);
}

TEST(WireRoundTrip, SubmitOk) {
  SubmitOkFrame in;
  in.job_id = 12;
  in.tenant = 4;
  in.admitted = 0;
  in.bounce_reason = "insufficient free PRCs";
  SubmitOkFrame out;
  ASSERT_TRUE(decode(framed(encode(in)), &out));
  EXPECT_EQ(out.job_id, 12u);
  EXPECT_EQ(out.tenant, 4u);
  EXPECT_EQ(out.admitted, 0);
  EXPECT_EQ(out.bounce_reason, "insufficient free PRCs");
}

TEST(WireRoundTrip, JobStatusWithReport) {
  JobStatusFrame in;
  in.job_id = 3;
  in.state = static_cast<std::uint8_t>(WireJobState::kDone);
  in.queue_position = 0;
  in.admitted_at = 1000;
  in.finished_at = 5200;
  in.latency_cycles = 4200;
  in.report_included = 1;
  in.report_json = "{\"v\":\"mrts.run_report.v1\"}";
  in.counters_delta = "sched.tasks +1\n";
  in.reason = "";
  JobStatusFrame out;
  ASSERT_TRUE(decode(framed(encode(in)), &out));
  EXPECT_EQ(out.job_id, 3u);
  EXPECT_EQ(out.state, static_cast<std::uint8_t>(WireJobState::kDone));
  EXPECT_EQ(out.admitted_at, 1000u);
  EXPECT_EQ(out.finished_at, 5200u);
  EXPECT_EQ(out.latency_cycles, 4200u);
  EXPECT_EQ(out.report_included, 1);
  EXPECT_EQ(out.report_json, in.report_json);
  EXPECT_EQ(out.counters_delta, in.counters_delta);
  EXPECT_EQ(out.reason, "");
}

TEST(WireRoundTrip, PollCancelCancelOkDisconnectByeError) {
  PollFrame poll_out;
  ASSERT_TRUE(decode(framed(encode(PollFrame{99})), &poll_out));
  EXPECT_EQ(poll_out.job_id, 99u);

  CancelFrame cancel_out;
  ASSERT_TRUE(decode(framed(encode(CancelFrame{7})), &cancel_out));
  EXPECT_EQ(cancel_out.job_id, 7u);

  CancelOkFrame cancel_ok_out;
  ASSERT_TRUE(decode(framed(encode(CancelOkFrame{7, 1})), &cancel_ok_out));
  EXPECT_EQ(cancel_ok_out.job_id, 7u);
  EXPECT_EQ(cancel_ok_out.cancelled, 1);

  // DISCONNECT has an empty payload by spec.
  const std::vector<std::uint8_t> disc = encode(DisconnectFrame{});
  EXPECT_EQ(disc.size(), kFrameHeaderSize);
  DisconnectFrame disc_out;
  EXPECT_TRUE(decode(framed(disc), &disc_out));

  ByeFrame bye_in;
  bye_in.jobs_submitted = 5;
  bye_in.jobs_auto_cancelled = 2;
  ByeFrame bye_out;
  ASSERT_TRUE(decode(framed(encode(bye_in)), &bye_out));
  EXPECT_EQ(bye_out.jobs_submitted, 5u);
  EXPECT_EQ(bye_out.jobs_auto_cancelled, 2u);

  ErrorFrame err_in;
  err_in.code = static_cast<std::uint16_t>(WireError::kBadSpec);
  err_in.fatal = 0;
  err_in.detail = "weight out of range";
  ErrorFrame err_out;
  ASSERT_TRUE(decode(framed(encode(err_in)), &err_out));
  EXPECT_EQ(err_out.code, static_cast<std::uint16_t>(WireError::kBadSpec));
  EXPECT_EQ(err_out.fatal, 0);
  EXPECT_EQ(err_out.detail, "weight out of range");
}

// ---------------------------------------------------------------------------
// Incremental decoding.
// ---------------------------------------------------------------------------

TEST(WireDecoder, ByteAtATimeFeedYieldsTheSameFrames) {
  SubmitFrame submit;
  submit.name = "t";
  submit.seed = 123;
  std::vector<std::uint8_t> stream = encode(HelloFrame{1, "c"});
  const std::vector<std::uint8_t> second = encode(submit);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    Frame f;
    while (decoder.next(&f) == FrameDecoder::Result::kFrame) {
      frames.push_back(f);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, static_cast<std::uint8_t>(FrameType::kHello));
  EXPECT_EQ(frames[1].type, static_cast<std::uint8_t>(FrameType::kSubmit));
  SubmitFrame out;
  ASSERT_TRUE(decode(frames[1], &out));
  EXPECT_EQ(out.seed, 123u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireDecoder, EveryPrefixTruncationNeedsMoreAndNeverErrors) {
  const std::vector<std::uint8_t> frame = encode(SubmitOkFrame{1, 2, 1, "ok"});
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(frame.data(), cut);
    Frame out;
    EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kNeedMore)
        << "prefix length " << cut;
    EXPECT_FALSE(decoder.poisoned());
    // The remainder completes the frame.
    decoder.feed(frame.data() + cut, frame.size() - cut);
    EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kFrame);
  }
}

TEST(WireDecoder, BadMagicPoisons) {
  std::vector<std::uint8_t> frame = encode(PollFrame{1});
  frame[2] = 'X';
  FrameDecoder decoder;
  decoder.feed(frame);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error(), WireError::kBadMagic);
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned is forever: even a pristine frame is no longer interpreted.
  decoder.feed(encode(PollFrame{2}));
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error(), WireError::kBadMagic);
}

TEST(WireDecoder, BadVersionPoisons) {
  std::vector<std::uint8_t> frame = encode(PollFrame{1});
  frame[4] = 0x63;  // version 99
  FrameDecoder decoder;
  decoder.feed(frame);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error(), WireError::kBadVersion);
}

TEST(WireDecoder, OversizedLengthPoisonsWithoutAllocating) {
  std::vector<std::uint8_t> frame = encode(PollFrame{1});
  // Claim a 0xFFFFFFFF-byte payload. The decoder must reject on the header
  // alone — it never waits for (or allocates) 4 GiB.
  frame[8] = frame[9] = frame[10] = frame[11] = 0xFF;
  FrameDecoder decoder;
  decoder.feed(frame.data(), kFrameHeaderSize);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error(), WireError::kBadLength);
}

TEST(WireDecoder, CrcMismatchPoisons) {
  std::vector<std::uint8_t> frame = encode(PollFrame{1});
  frame.back() ^= 0x01;  // corrupt one payload byte
  FrameDecoder decoder;
  decoder.feed(frame);
  Frame out;
  EXPECT_EQ(decoder.next(&out), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error(), WireError::kBadCrc);
}

TEST(WireDecoder, UnknownFrameTypePassesFraming) {
  // An unknown type with a valid header/CRC is *framing*-valid: the decoder
  // yields it and the session layer answers kUnknownType (recoverable).
  std::vector<std::uint8_t> frame = encode_frame(
      static_cast<FrameType>(0x0B), std::vector<std::uint8_t>{1, 2, 3});
  FrameDecoder decoder;
  decoder.feed(frame);
  Frame out;
  ASSERT_EQ(decoder.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.type, 0x0B);
  EXPECT_FALSE(frame_type_known(out.type));
  EXPECT_EQ(out.payload.size(), 3u);
}

// ---------------------------------------------------------------------------
// Payload-level rejection: bad payloads reject the frame, not the stream.
// ---------------------------------------------------------------------------

TEST(WirePayload, TrailingBytesRejected) {
  std::vector<std::uint8_t> payload(8, 0);
  payload.push_back(0xAA);  // one byte past the u64 job id
  const Frame frame{static_cast<std::uint8_t>(FrameType::kPoll),
                    std::move(payload)};
  PollFrame out;
  EXPECT_FALSE(decode(frame, &out));
}

TEST(WirePayload, TruncatedFieldsRejected) {
  const std::vector<std::uint8_t> good = encode(SubmitFrame{});
  const std::vector<std::uint8_t> full(good.begin() + kFrameHeaderSize,
                                       good.end());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Frame frame;
    frame.type = static_cast<std::uint8_t>(FrameType::kSubmit);
    frame.payload.assign(full.begin(), full.begin() + cut);
    SubmitFrame out;
    EXPECT_FALSE(decode(frame, &out)) << "payload truncated to " << cut;
  }
}

TEST(WirePayload, WrongTypeTagRejected) {
  const std::vector<std::uint8_t> bytes = encode(PollFrame{5});
  Frame frame = framed(bytes);
  frame.type = static_cast<std::uint8_t>(FrameType::kHello);
  PollFrame out;
  EXPECT_FALSE(decode(frame, &out));
}

// ---------------------------------------------------------------------------
// Fuzz: seeded random garbage and random corruption never crash and never
// yield a frame that did not survive CRC.
// ---------------------------------------------------------------------------

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = 1 + rng.next_below(512);
    std::vector<std::uint8_t> garbage(size);
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    FrameDecoder decoder;
    decoder.feed(garbage);
    Frame out;
    // Drain: any mix of kNeedMore/kError is legal, a crash is not. A yielded
    // kFrame must carry a CRC-consistent payload (astronomically unlikely
    // from garbage, but legal if it happens).
    for (int step = 0; step < 64; ++step) {
      const FrameDecoder::Result result = decoder.next(&out);
      if (result != FrameDecoder::Result::kFrame) break;
    }
  }
}

TEST(WireFuzz, SingleByteCorruptionNeverYieldsACorruptFrame) {
  SubmitFrame submit;
  submit.name = "fuzz";
  submit.seed = 42;
  const std::vector<std::uint8_t> frame = encode(submit);
  Rng rng(7);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> copy = frame;
    const std::size_t pos = rng.next_below(copy.size());
    const std::uint8_t flip =
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    copy[pos] ^= flip;
    FrameDecoder decoder;
    decoder.feed(copy);
    Frame out;
    const FrameDecoder::Result result = decoder.next(&out);
    if (result == FrameDecoder::Result::kFrame) {
      // Only corruption inside the payload of a *re-CRC-consistent* frame
      // could land here; the CRC makes single-byte flips detectable, so the
      // only way to get a frame back is flipping a byte the protocol treats
      // as free (there are none in v1) — assert we never get here except
      // when the flip produced an identical stream (impossible with XOR).
      ADD_FAILURE() << "single-byte corruption at " << pos << " survived";
    }
  }
}

TEST(WireFuzz, RandomFragmentationPreservesFrames) {
  // A multi-frame stream fed in random-sized chunks always yields exactly
  // the same frames.
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 8; ++i) {
    const std::vector<std::uint8_t> f =
        encode(PollFrame{static_cast<std::uint64_t>(i)});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder;
    std::size_t offset = 0;
    std::vector<std::uint64_t> ids;
    while (offset < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.next_below(40), stream.size() - offset);
      decoder.feed(stream.data() + offset, chunk);
      offset += chunk;
      Frame f;
      while (decoder.next(&f) == FrameDecoder::Result::kFrame) {
        PollFrame poll;
        ASSERT_TRUE(decode(f, &poll));
        ids.push_back(poll.job_id);
      }
    }
    ASSERT_EQ(ids.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(ids[i], i);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

}  // namespace
}  // namespace mrts::serve
