// Tests for the obs/ trace-analysis engine: histogram percentiles, the
// hardened JSONL parser, fabric-shape inference, occupancy timelines,
// cycle accounting (the buckets-sum-to-span invariant, for handcrafted
// traces and for every baseline RTS plus the full fig9 grid), reconfig
// critical paths, per-tenant latency, and the determinism of the serialized
// RunReport at any sweep worker count.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/morpheus4s_rts.h"
#include "baselines/offline_optimal_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "obs/report_io.h"
#include "obs/run_report.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "sim/multi_app.h"
#include "sim/sweep_runner.h"
#include "util/counters.h"
#include "util/trace.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

using obs::AnalysisConfig;
using obs::CycleBucket;
using obs::RunReport;
using obs::UnitState;

// ---------------------------------------------------------------------------
// Histogram percentiles (util/counters.h)

TEST(ObsPercentile, EmptyHistogramReturnsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(ObsPercentile, SingleValueClampsEveryPercentile) {
  Histogram h;
  h.observe(100.0);
  for (const double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 100.0) << "p=" << p;
  }
}

TEST(ObsPercentile, ExactOnBucketBoundary) {
  // 5 observations in bucket [1,2), 5 in bucket [4,8): the median target
  // (p * count = 5) lands exactly on the first bucket's cumulative boundary,
  // so the estimate is that bucket's upper edge — before clamping to the
  // observed range.
  Histogram h;
  for (int i = 0; i < 5; ++i) h.observe(1.0);
  for (int i = 0; i < 5; ++i) h.observe(4.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
  // p=1.0 walks to the end of the populated buckets and clamps to max.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
  // p=0 clamps to the observed min.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(ObsPercentile, MonotoneAndWithinObservedRange) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  double prev = 0.0;
  for (const double p : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // Out-of-range p clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
}

// ---------------------------------------------------------------------------
// Hardened JSONL parser (util/trace.h parse_trace_jsonl)

TEST(ObsTraceParser, EmptyFileIsZeroEventsNotAnError) {
  std::istringstream is("");
  const ParsedTrace parsed = parse_trace_jsonl(is);
  EXPECT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.events.empty());
  EXPECT_EQ(parsed.lines, 0u);
}

TEST(ObsTraceParser, TrailingNewlineAndBlankLinesAreFine) {
  std::istringstream is(
      "\n"
      "{\"kind\":\"block_begin\",\"at\":5,\"dur\":0,\"track\":0,"
      "\"arg0\":0,\"arg1\":0,\"v0\":0,\"v1\":0}\n"
      "\n");
  const ParsedTrace parsed = parse_trace_jsonl(is);
  EXPECT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].at, 5u);
  EXPECT_EQ(parsed.lines, 3u);
}

TEST(ObsTraceParser, TruncatedLastLineNamesTheLineNumber) {
  std::istringstream is(
      "{\"kind\":\"block_begin\",\"at\":5,\"dur\":0,\"track\":0,"
      "\"arg0\":0,\"arg1\":0,\"v0\":0,\"v1\":0}\n"
      "{\"kind\":\"block_end\",\"at\":9,\"du");  // truncated mid-write
  const ParsedTrace parsed = parse_trace_jsonl(is);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.bad_line, 2u);
  EXPECT_EQ(parsed.events.size(), 1u);  // everything before the bad line
}

TEST(ObsTraceParser, MalformedMiddleLineNamesTheLineNumber) {
  std::istringstream is(
      "{\"kind\":\"block_begin\",\"at\":5,\"dur\":0,\"track\":0,"
      "\"arg0\":0,\"arg1\":0,\"v0\":0,\"v1\":0}\n"
      "\n"
      "not json at all\n"
      "{\"kind\":\"block_begin\",\"at\":7,\"dur\":0,\"track\":0,"
      "\"arg0\":0,\"arg1\":0,\"v0\":0,\"v1\":0}\n");
  const ParsedTrace parsed = parse_trace_jsonl(is);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.bad_line, 3u);  // 1-based, counting the blank line
  EXPECT_EQ(parsed.events.size(), 1u);
}

// ---------------------------------------------------------------------------
// Shape inference (obs/analysis.h)

TEST(ObsShape, InferredFromOccupancySamplesAndSpanFromEvents) {
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kBlockBegin, kTrackApp, 10, 0, 0, 0});
  events.push_back({TraceEventKind::kOccupancy, kTrackApp, 20, 0, 3, 2});
  events.push_back({TraceEventKind::kBlockEnd, kTrackApp, 10, 90, 0, 0});
  const obs::TraceShape shape = obs::infer_shape(events, {});
  EXPECT_EQ(shape.num_prcs, 3u);
  EXPECT_EQ(shape.num_cg, 2u);
  EXPECT_EQ(shape.span_begin, 10u);
  EXPECT_EQ(shape.span_end, 100u);
  EXPECT_EQ(shape.span(), 90u);
}

TEST(ObsShape, ConfigOverridesAndTrackFallback) {
  std::vector<TraceEvent> events;
  events.push_back(
      {TraceEventKind::kReconfigStart, kTrackFgBase + 2, 0, 10, 0, 0});
  events.push_back({TraceEventKind::kReconfigStart, kTrackCgBase, 5, 10, 0, 0});
  // No kOccupancy samples: the highest track index pins the shape.
  const obs::TraceShape inferred = obs::infer_shape(events, {});
  EXPECT_EQ(inferred.num_prcs, 3u);
  EXPECT_EQ(inferred.num_cg, 1u);
  // An explicit config wins over anything in the trace.
  AnalysisConfig config;
  config.num_prcs = 4;
  config.num_cg = 2;
  const obs::TraceShape overridden = obs::infer_shape(events, config);
  EXPECT_EQ(overridden.num_prcs, 4u);
  EXPECT_EQ(overridden.num_cg, 2u);

  const obs::TraceShape empty = obs::infer_shape({}, {});
  EXPECT_EQ(empty.span(), 0u);
  EXPECT_EQ(empty.num_prcs, 0u);
}

// ---------------------------------------------------------------------------
// Occupancy timelines (obs/occupancy.h)

TEST(ObsOccupancy, TimelineIsAGaplessPartitionOfTheSpan) {
  // Span [0,100) pinned by one core block; fg0 loads over [10,20), becomes
  // ready, and is quarantined at 50.
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kBlockEnd, kTrackApp, 0, 100, 0, 0});
  events.push_back({TraceEventKind::kReconfigStart, kTrackFgBase, 10, 10, 0, 0});
  events.push_back({TraceEventKind::kReconfigComplete, kTrackFgBase, 20, 0, 0, 0});
  events.push_back({TraceEventKind::kQuarantine, kTrackFgBase, 50, 0, 0, 0});
  AnalysisConfig config;
  config.num_prcs = 1;
  const obs::TraceShape shape = obs::infer_shape(events, config);
  const obs::OccupancyAnalysis occ = obs::analyze_occupancy(events, shape);
  ASSERT_EQ(occ.units.size(), 1u);
  const obs::UnitTimeline& tl = occ.units[0];
  EXPECT_EQ(tl.name, "fg0");
  ASSERT_EQ(tl.intervals.size(), 4u);
  const auto expect_interval = [&](std::size_t i, Cycles begin, Cycles end,
                                   UnitState state) {
    EXPECT_EQ(tl.intervals[i].begin, begin) << "interval " << i;
    EXPECT_EQ(tl.intervals[i].end, end) << "interval " << i;
    EXPECT_EQ(tl.intervals[i].state, state) << "interval " << i;
  };
  expect_interval(0, 0, 10, UnitState::kEmpty);
  expect_interval(1, 10, 20, UnitState::kLoading);
  expect_interval(2, 20, 50, UnitState::kReady);
  expect_interval(3, 50, 100, UnitState::kQuarantined);
  // The per-state cycle totals partition the span; utilization = ready/span.
  Cycles total = 0;
  for (const Cycles c : tl.state_cycles) total += c;
  EXPECT_EQ(total, shape.span());
  EXPECT_DOUBLE_EQ(tl.utilization, 0.30);
  EXPECT_DOUBLE_EQ(occ.fg_utilization, 0.30);
  EXPECT_DOUBLE_EQ(occ.cg_utilization, 0.0);  // no CG units: 0, never NaN
}

TEST(ObsOccupancy, ScrubTagsTheRepairLoad) {
  // The scrub fires at 30 but the port is busy: the repair load starts at
  // 35. The mark must tag that (later) load, not a preceding one.
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kBlockEnd, kTrackApp, 0, 50, 0, 0});
  events.push_back({TraceEventKind::kReconfigStart, kTrackFgBase, 0, 10, 0, 0});
  events.push_back({TraceEventKind::kReconfigComplete, kTrackFgBase, 10, 0, 0, 0});
  events.push_back({TraceEventKind::kScrubRepair, kTrackFgBase, 30, 0, 0, 0});
  events.push_back({TraceEventKind::kReconfigStart, kTrackFgBase, 35, 5, 0, 0});
  events.push_back({TraceEventKind::kReconfigComplete, kTrackFgBase, 40, 0, 0, 0});
  AnalysisConfig config;
  config.num_prcs = 1;
  const obs::OccupancyAnalysis occ =
      obs::analyze_occupancy(events, obs::infer_shape(events, config));
  ASSERT_EQ(occ.units.size(), 1u);
  const obs::UnitTimeline& tl = occ.units[0];
  EXPECT_EQ(tl.state_cycles[static_cast<std::size_t>(UnitState::kLoading)],
            10u);
  EXPECT_EQ(tl.state_cycles[static_cast<std::size_t>(UnitState::kRepairing)],
            5u);
}

TEST(ObsOccupancy, FragmentationAndCompactionAreTimeWeighted) {
  // 3 PRCs; only the middle one is ever occupied (loading [0,10), then
  // ready). The free set {fg0, fg2} is split around it for the whole span:
  // fragmentation 1 - 1/2 = 0.5, compaction opportunity 2 - 1 = 1.
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kBlockEnd, kTrackApp, 0, 100, 0, 0});
  events.push_back(
      {TraceEventKind::kReconfigStart, kTrackFgBase + 1, 0, 10, 0, 0});
  events.push_back(
      {TraceEventKind::kReconfigComplete, kTrackFgBase + 1, 10, 0, 0, 0});
  AnalysisConfig config;
  config.num_prcs = 3;
  const obs::OccupancyAnalysis occ =
      obs::analyze_occupancy(events, obs::infer_shape(events, config));
  EXPECT_DOUBLE_EQ(occ.fragmentation_index, 0.5);
  EXPECT_DOUBLE_EQ(occ.compaction_opportunity, 1.0);
  EXPECT_DOUBLE_EQ(occ.fg_utilization, 90.0 / 300.0);
}

// ---------------------------------------------------------------------------
// Cycle accounting (obs/cycle_accounting.h)

Cycles row_total(const obs::AccountingRow& row) { return row.total(); }

void expect_all_rows_sum_to_span(const obs::CycleAccounting& acc,
                                 const std::string& what) {
  EXPECT_EQ(row_total(acc.core), acc.span()) << what << " core";
  for (const obs::AccountingRow& row : acc.tenants) {
    EXPECT_EQ(row_total(row), acc.span()) << what << " " << row.key;
  }
  for (const obs::AccountingRow& row : acc.units) {
    EXPECT_EQ(row_total(row), acc.span()) << what << " " << row.key;
  }
}

TEST(AnalysisAccounting, HandcraftedBucketsMatchAndSumToSpan) {
  // Span [0,60): two blocks [10,30) (5 stalled cycles, tenant 1) and
  // [40,50) (tenant 2), a lead-in [0,10) and a tail [50,60).
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kBlockBegin, kTrackApp, 0, 0, 0, 0});
  events.push_back(
      {TraceEventKind::kBlockEnd, kTrackApp, 10, 20, 0, 0, 5.0, 0.0, 1});
  events.push_back(
      {TraceEventKind::kBlockEnd, kTrackApp, 40, 10, 0, 0, 0.0, 0.0, 2});
  events.push_back({TraceEventKind::kSelectorEval, kTrackSelector, 60, 0, 0, 0});
  const obs::TraceShape shape = obs::infer_shape(events, {});
  const obs::CycleAccounting acc =
      obs::account_cycles(events, shape, obs::analyze_occupancy(events, shape));
  EXPECT_EQ(acc.span(), 60u);
  EXPECT_EQ(acc.core[CycleBucket::kExecute], 25u);
  EXPECT_EQ(acc.core[CycleBucket::kReconfigStall], 5u);
  EXPECT_EQ(acc.core[CycleBucket::kArbiterIdle], 10u);
  EXPECT_EQ(acc.core[CycleBucket::kPureIdle], 20u);

  ASSERT_EQ(acc.tenants.size(), 2u);
  EXPECT_EQ(acc.tenants[0].key, "tenant.1");
  EXPECT_EQ(acc.tenants[0][CycleBucket::kExecute], 15u);
  EXPECT_EQ(acc.tenants[0][CycleBucket::kReconfigStall], 5u);
  EXPECT_EQ(acc.tenants[0][CycleBucket::kPureIdle], 40u);
  EXPECT_EQ(acc.tenants[1].key, "tenant.2");
  EXPECT_EQ(acc.tenants[1][CycleBucket::kExecute], 10u);
  EXPECT_EQ(acc.tenants[1][CycleBucket::kPureIdle], 50u);

  expect_all_rows_sum_to_span(acc, "handcrafted");
}

TEST(AnalysisAccounting, EmptyTraceIsAllPureIdle) {
  const obs::TraceShape shape = obs::infer_shape({}, {});
  const obs::CycleAccounting acc =
      obs::account_cycles({}, shape, obs::analyze_occupancy({}, shape));
  EXPECT_EQ(acc.span(), 0u);
  EXPECT_EQ(row_total(acc.core), 0u);
}

H264Application small_app() {
  H264AppParams params;
  params.frames = 2;
  params.macroblocks = 20;
  return build_h264_application(params);
}

TEST(AnalysisAccounting, SumInvariantHoldsForEveryBaselineRts) {
  const H264Application app = small_app();
  const std::vector<BlockProfile> profile =
      profile_application(app.trace, app.library);
  const unsigned prcs = 2;
  const unsigned cg = 2;

  const auto analyze = [&](RuntimeSystem& rts, const std::string& what) {
    TraceRecorder recorder;
    rts.attach_observability(&recorder, nullptr);
    run_application(rts, app.trace, &recorder);
    AnalysisConfig config;
    config.num_prcs = prcs;
    config.num_cg = cg;
    const RunReport report = obs::analyze_trace(recorder.events(), config);
    EXPECT_GT(report.total_events, 0u) << what;
    expect_all_rows_sum_to_span(report.accounting, what);
  };

  RiscOnlyRts risc(app.library);
  analyze(risc, "risc-only");
  RisppRts rispp(app.library, cg, prcs);
  analyze(rispp, "rispp");
  Morpheus4sRts morpheus(app.library, cg, prcs, profile);
  analyze(morpheus, "morpheus");
  OfflineOptimalRts offline(app.library, cg, prcs, profile);
  analyze(offline, "offline-optimal");
  MRts mrts_rts(app.library, cg, prcs);
  analyze(mrts_rts, "mrts");
}

TEST(AnalysisAccounting, SumInvariantHoldsAcrossTheFig9Grid) {
  // The fig9 axes: every fabric combination of the paper grid, heuristic
  // and optimal selector. Small workload — the invariant is structural,
  // not workload-sized.
  const H264Application app = small_app();
  for (const FabricCombination& combo : fabric_sweep(4, 3)) {
    for (const bool optimal : {false, true}) {
      MRtsConfig config;
      config.use_optimal_selector = optimal;
      MRts rts(app.library, combo.cg, combo.prcs, config);
      TraceRecorder recorder;
      rts.attach_observability(&recorder, nullptr);
      run_application(rts, app.trace, &recorder);
      AnalysisConfig analysis;
      analysis.num_prcs = combo.prcs;
      analysis.num_cg = combo.cg;
      const RunReport report = obs::analyze_trace(recorder.events(), analysis);
      expect_all_rows_sum_to_span(
          report.accounting,
          combo.label() + (optimal ? "/optimal" : "/heuristic"));
      ASSERT_EQ(report.accounting.units.size(), combo.prcs + combo.cg);
    }
  }
}

// ---------------------------------------------------------------------------
// Reconfiguration critical paths (obs/critical_path.h)

TEST(AnalysisCriticalPath, ChainsHopsAndHiddenFraction) {
  // FG port: loads [0,10) -> [10,25) back-to-back (one 2-hop chain), then a
  // drained port and a lone load [40,50).
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kReconfigStart, kTrackFgBase, 0, 10, 0, 0});
  events.push_back({TraceEventKind::kReconfigComplete, kTrackFgBase, 10, 0, 0, 0});
  events.push_back({TraceEventKind::kReconfigStart, kTrackFgBase, 10, 15, 0, 0});
  events.push_back({TraceEventKind::kReconfigComplete, kTrackFgBase, 25, 0, 0, 0});
  events.push_back({TraceEventKind::kReconfigStart, kTrackFgBase, 40, 10, 0, 0});
  events.push_back({TraceEventKind::kReconfigComplete, kTrackFgBase, 50, 0, 0, 0});
  AnalysisConfig config;
  config.num_prcs = 1;
  const obs::TraceShape shape = obs::infer_shape(events, config);
  {
    const obs::CriticalPathAnalysis cp =
        obs::analyze_critical_path(events, shape);
    ASSERT_EQ(cp.chains.size(), 2u);
    EXPECT_EQ(cp.chains[0].begin, 0u);
    EXPECT_EQ(cp.chains[0].end, 25u);
    EXPECT_EQ(cp.chains[0].hops, 2u);
    EXPECT_EQ(cp.chains[1].hops, 1u);
    EXPECT_EQ(cp.longest_chain_cycles, 25u);
    EXPECT_EQ(cp.longest_chain_hops, 2u);
    EXPECT_EQ(cp.longest_chain_grain, Grain::kFine);
    EXPECT_EQ(cp.reconfig_busy, 35u);
    EXPECT_EQ(cp.hop_latency.count(), 3u);
    EXPECT_DOUBLE_EQ(cp.hop_latency.min(), 10.0);
    EXPECT_DOUBLE_EQ(cp.hop_latency.max(), 15.0);
    // No core blocks recorded: nothing stalled, reconfig fully hidden.
    EXPECT_EQ(cp.core_stall, 0u);
    EXPECT_DOUBLE_EQ(cp.hidden_fraction, 1.0);
  }
  // Now the core stalls out every streamed cycle: hidden fraction drops
  // to 0 ("the application waited out every load").
  events.push_back(
      {TraceEventKind::kBlockEnd, kTrackApp, 0, 50, 0, 0, 35.0, 0.0});
  const obs::CriticalPathAnalysis stalled =
      obs::analyze_critical_path(events, obs::infer_shape(events, config));
  EXPECT_EQ(stalled.core_stall, 35u);
  EXPECT_DOUBLE_EQ(stalled.hidden_fraction, 0.0);
}

TEST(AnalysisCriticalPath, EmptyTraceIsDegenerateHidden) {
  const obs::CriticalPathAnalysis cp =
      obs::analyze_critical_path({}, obs::infer_shape({}, {}));
  EXPECT_TRUE(cp.chains.empty());
  EXPECT_EQ(cp.reconfig_busy, 0u);
  EXPECT_DOUBLE_EQ(cp.hidden_fraction, 1.0);
}

// ---------------------------------------------------------------------------
// Per-tenant admission-to-completion latency (obs/run_report.h)

TEST(AnalysisTenantLatency, NearestRankPercentilesFromCompletionEvents) {
  std::vector<TraceEvent> events;
  const auto admit = [&](std::uint32_t tenant, bool admitted, Cycles at) {
    events.push_back({TraceEventKind::kTenantAdmission, kTrackApp, at, 0, 0,
                      admitted ? 1u : 0u, 0.0, 0.0, tenant});
  };
  const auto complete = [&](std::uint32_t tenant, Cycles at, Cycles latency) {
    events.push_back({TraceEventKind::kTenantCompletion, kTrackApp, at,
                      latency, 0, 0, 1.0, 0.0, tenant});
  };
  for (int i = 0; i < 4; ++i) admit(1, true, 0);
  complete(1, 0, 30);
  complete(1, 0, 10);
  complete(1, 0, 40);
  complete(1, 0, 20);
  admit(2, false, 5);  // bounced, never completes

  const RunReport report = obs::analyze_trace(events, {});
  ASSERT_EQ(report.tenant_latency.size(), 2u);
  const obs::TenantLatency& t1 = report.tenant_latency[0];
  EXPECT_EQ(t1.tenant, 1u);
  EXPECT_EQ(t1.admitted, 4u);
  EXPECT_EQ(t1.bounced, 0u);
  EXPECT_EQ(t1.completed, 4u);
  EXPECT_EQ(t1.min, 10u);
  EXPECT_EQ(t1.p50, 20u);  // nearest rank: ceil(0.50 * 4) = 2nd of sorted
  EXPECT_EQ(t1.p99, 40u);  // ceil(0.99 * 4) = 4th
  EXPECT_EQ(t1.max, 40u);
  const obs::TenantLatency& t2 = report.tenant_latency[1];
  EXPECT_EQ(t2.tenant, 2u);
  EXPECT_EQ(t2.admitted, 0u);
  EXPECT_EQ(t2.bounced, 1u);
  EXPECT_EQ(t2.completed, 0u);
  EXPECT_EQ(t2.max, 0u);
}

TEST(AnalysisTenantLatency, SchedulerStampsAdmissionAndCompletion) {
  const H264Application app = small_app();
  FabricManager shared(2, 2, &app.library.data_paths());
  MRts a(app.library, shared);
  MRts b(app.library, shared);
  TraceRecorder recorder;
  std::vector<Task> tasks;
  tasks.push_back({"a", &a, &app.trace, 1, &recorder});
  tasks.push_back({"b", &b, &app.trace, 1, &recorder});
  tasks[1].release = 1000;
  const MultiTenantResult result = run_multi_tenant(tasks);
  ASSERT_EQ(result.tasks.size(), 2u);
  EXPECT_EQ(result.tasks[1].admitted_at, 1000u);

  EXPECT_EQ(recorder.count(TraceEventKind::kTenantAdmission), 2u);
  EXPECT_EQ(recorder.count(TraceEventKind::kTenantCompletion), 2u);
  const RunReport report = obs::analyze_trace(recorder.events(), {});
  ASSERT_EQ(report.tenant_latency.size(), 1u);  // both default tenant 0
  EXPECT_EQ(report.tenant_latency[0].admitted, 2u);
  EXPECT_EQ(report.tenant_latency[0].completed, 2u);
  EXPECT_GT(report.tenant_latency[0].min, 0u);
  // Completion latency = finished_at - admitted_at, verifiable from the
  // scheduler's own result.
  const Cycles expected_max =
      std::max(result.tasks[0].run.finished_at - result.tasks[0].admitted_at,
               result.tasks[1].run.finished_at - result.tasks[1].admitted_at);
  EXPECT_EQ(report.tenant_latency[0].max, expected_max);
}

// ---------------------------------------------------------------------------
// Serialized-report determinism (obs/report_io.h)

TEST(AnalysisReportDeterminism, JsonIsByteIdenticalAtAnyJobCount) {
  const H264Application app = small_app();
  const std::vector<FabricCombination> points = fabric_sweep(2, 1);
  const auto run_at = [&](unsigned jobs) {
    const SweepRunner runner(jobs);
    return runner.map(points, [&](const FabricCombination& combo) {
      MRts rts(app.library, combo.cg, combo.prcs);
      TraceRecorder recorder;
      rts.attach_observability(&recorder, nullptr);
      run_application(rts, app.trace, &recorder);
      AnalysisConfig config;
      config.num_prcs = combo.prcs;
      config.num_cg = combo.cg;
      std::ostringstream os;
      obs::write_report_json(os, obs::analyze_trace(recorder.events(), config));
      return os.str();
    });
  };
  const std::vector<std::string> serial = run_at(1);
  ASSERT_EQ(serial.size(), points.size());
  for (const std::string& json : serial) EXPECT_FALSE(json.empty());
  for (const unsigned jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(run_at(jobs), serial) << "jobs=" << jobs;
  }
}

TEST(AnalysisReportDeterminism, AllThreeSerializersAreStableFunctions) {
  const H264Application app = small_app();
  MRts rts(app.library, 1, 1);
  TraceRecorder recorder;
  rts.attach_observability(&recorder, nullptr);
  run_application(rts, app.trace, &recorder);
  AnalysisConfig config;
  config.num_prcs = 1;
  config.num_cg = 1;
  const RunReport report = obs::analyze_trace(recorder.events(), config);
  const auto render = [&](void (*writer)(std::ostream&, const RunReport&)) {
    std::ostringstream os;
    writer(os, report);
    return os.str();
  };
  const std::string json = render(obs::write_report_json);
  const std::string csv = render(obs::write_report_csv);
  const std::string md = render(obs::write_report_markdown);
  EXPECT_EQ(render(obs::write_report_json), json);
  EXPECT_EQ(render(obs::write_report_csv), csv);
  EXPECT_EQ(render(obs::write_report_markdown), md);
  EXPECT_NE(json.find("\"schema\": \"mrts.run_report.v1\""), std::string::npos);
  EXPECT_EQ(csv.rfind("section,row,metric,value", 0), 0u);
  EXPECT_NE(md.find("| core |"), std::string::npos);
}

}  // namespace
}  // namespace mrts
