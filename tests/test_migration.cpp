// Live ISE migration (FabricManager::migrate_prc / migrate_cg) and the
// DefragPolicy built on it: drain semantics, port serialization, abort paths
// under quarantine and copy failures, and compaction of scattered holes down
// to the fragmentation floor. All scenarios are deterministic — holes are
// punched by a probability-1.0 load-failure model, not by luck.

#include <gtest/gtest.h>

#include "arch/fabric_manager.h"
#include "arch/fault_model.h"
#include "rts/migration.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "util/counters.h"
#include "util/trace.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

/// Fault model that fails every FG streaming attempt on the first try and
/// never quarantines: a failed load evicts its victim and leaves a hole.
FaultModelConfig always_fail_fg() {
  FaultModelConfig c;
  c.fg_load_failure_prob = 1.0;
  c.permanent_fault_prob = 0.0;
  c.max_retries = 0;
  return c;
}

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    for (int i = 0; i < 10; ++i) {
      DataPathDesc fg;
      fg.name = "fg" + std::to_string(i);
      fg.grain = Grain::kFine;
      fg_[i] = table_.add(fg);
    }
    DataPathDesc cg;
    cg.name = "cg";
    cg.grain = Grain::kCoarse;
    cg.context_instructions = 30;
    cg_ = table_.add(cg);
  }

  Cycles fg_cost() const { return table_[fg_[0]].reconfig_cycles(); }

  /// Installs fg_[0..n) as one selection at t=0: dp i lands on PRC i with
  /// ready time (i+1)*fg_cost (loads serialize on the reconfiguration port).
  void fill_prcs(FabricManager& fm, unsigned n) {
    IsePlacementRequest req;
    req.ise = IseId{0};
    req.kernel = KernelId{0};
    for (unsigned i = 0; i < n; ++i) req.data_paths.push_back(fg_[i]);
    fm.install({req}, 0);
  }

  /// Punches holes at PRCs 0 and 2 of a full 8-PRC fabric: the selection
  /// reuses the residents of PRCs 1 and 3 and asks for two fresh data paths
  /// whose loads all fail (always_fail_fg). The victim picker walks the
  /// oldest unclaimed containers — PRC 0 for the first doomed load, PRC 2
  /// for the second (0 is empty by then but already claimed) — so the free
  /// space is {0, 2}: two one-PRC runs, fragmentation 1 - 1/2 = 0.5.
  void punch_holes(FabricManager& fm, FaultModel& model) {
    fill_prcs(fm, 8);
    fm.attach_fault_model(&model);
    fm.install({{IseId{1}, KernelId{1}, {fg_[1], fg_[8]}},
                {IseId{2}, KernelId{2}, {fg_[3], fg_[9]}}},
               /*now=*/10 * fg_cost());
    ASSERT_TRUE(fm.fg_fabric().prc(0).empty());
    ASSERT_TRUE(fm.fg_fabric().prc(2).empty());
    ASSERT_DOUBLE_EQ(fg_fragmentation(fm), 0.5);
  }

  DataPathTable table_;
  DataPathId fg_[10];
  DataPathId cg_;
};

TEST_F(MigrationTest, DrainWaitsForSourceConfigurationToFinishLoading) {
  FabricManager fm(0, 2, &table_);
  fill_prcs(fm, 1);  // loading until fg_cost
  const MigrationResult res = fm.migrate_prc(0, 1, /*now=*/0);
  ASSERT_EQ(res.status, MigrationStatus::kMigrated);
  EXPECT_EQ(res.dp, fg_[0]);
  // The copy cannot start before the source is usable...
  EXPECT_EQ(res.drained_at, fg_cost());
  // ...and streams through the same port right behind the initial load.
  EXPECT_EQ(res.ready_at, 2 * fg_cost());
  EXPECT_TRUE(fm.fg_fabric().prc(0).empty());
  EXPECT_EQ(fm.fg_fabric().prc(1).occupant, fg_[0]);
}

TEST_F(MigrationTest, CopyWaitsBehindPendingPortBacklog) {
  FabricManager fm(0, 3, &table_);
  fill_prcs(fm, 2);  // port busy until 2*fg_cost
  const MigrationResult res = fm.migrate_prc(0, 2, /*now=*/0);
  ASSERT_EQ(res.status, MigrationStatus::kMigrated);
  EXPECT_EQ(res.drained_at, fg_cost());
  // Drained at fg_cost, but the port still owes fg_[1]'s stream: the copy
  // serializes behind it instead of preempting.
  EXPECT_EQ(res.ready_at, 3 * fg_cost());
}

TEST_F(MigrationTest, SuccessMovesOccupantReservationAndAvailability) {
  FabricManager fm(0, 2, &table_);
  fill_prcs(fm, 1);
  const Cycles now = 10 * fg_cost();
  const std::uint64_t epoch = fm.state_epoch();
  const MigrationResult res = fm.migrate_prc(0, 1, now);
  ASSERT_EQ(res.status, MigrationStatus::kMigrated);
  EXPECT_GT(fm.state_epoch(), epoch);
  // The instance is unavailable while the copy streams, then reappears on
  // the target; the install's reservation followed it.
  EXPECT_EQ(fm.available_instances(fg_[0], now), 0u);
  EXPECT_EQ(fm.available_instances(fg_[0], res.ready_at), 1u);
  EXPECT_EQ(fm.usage().reserved_prcs, 1u);
}

TEST_F(MigrationTest, AbortPathsMutateNothing) {
  FabricManager fm(0, 3, &table_);
  fill_prcs(fm, 1);
  fm.quarantine_prc(2, 0);
  const std::uint64_t epoch = fm.state_epoch();

  // Empty source.
  EXPECT_EQ(fm.migrate_prc(1, 0, 0).status,
            MigrationStatus::kNothingToMigrate);
  // Quarantined source: abort so the caller can retry from another PRC.
  EXPECT_EQ(fm.migrate_prc(2, 1, 0).status,
            MigrationStatus::kSourceQuarantined);
  // Occupied / quarantined / self / out-of-range targets.
  EXPECT_EQ(fm.migrate_prc(0, 0, 0).status,
            MigrationStatus::kTargetUnavailable);
  EXPECT_EQ(fm.migrate_prc(0, 2, 0).status,
            MigrationStatus::kTargetUnavailable);
  EXPECT_EQ(fm.migrate_prc(0, 99, 0).status,
            MigrationStatus::kTargetUnavailable);

  EXPECT_EQ(fm.state_epoch(), epoch) << "aborted migrations must not mutate";
  EXPECT_EQ(fm.fg_fabric().prc(0).occupant, fg_[0]);
}

TEST_F(MigrationTest, CopyFailureKeepsSourceServing) {
  FaultModel model(always_fail_fg());
  FabricManager fm(0, 2, &table_);
  fill_prcs(fm, 1);
  fm.attach_fault_model(&model);
  const MigrationResult res = fm.migrate_prc(0, 1, 10 * fg_cost());
  EXPECT_EQ(res.status, MigrationStatus::kCopyFailed);
  EXPECT_EQ(fm.fg_fabric().prc(0).occupant, fg_[0])
      << "a failed copy must leave the source intact";
  EXPECT_TRUE(fm.fg_fabric().prc(1).empty());
  EXPECT_EQ(model.stats().load_failures, 1u);
}

TEST_F(MigrationTest, SuccessEmitsTraceEventsAndCounters) {
  TraceRecorder rec;
  CounterRegistry ctr;
  FabricManager fm(0, 2, &table_);
  fm.attach_observability(&rec, &ctr);
  fill_prcs(fm, 1);
  fm.migrate_prc(0, 1, 10 * fg_cost());
  unsigned starts = 0, completes = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.kind == TraceEventKind::kMigrationStart) ++starts;
    if (e.kind == TraceEventKind::kMigrationComplete) ++completes;
  }
  EXPECT_EQ(starts, 1u);
  EXPECT_EQ(completes, 1u);
  EXPECT_EQ(ctr.counter("migration.started"), 1u);
  EXPECT_EQ(ctr.counter("migration.completed"), 1u);
}

TEST_F(MigrationTest, CgMigrationMovesOldestContext) {
  FabricManager fm(2, 1, &table_);
  fm.install({{IseId{0}, KernelId{0}, {cg_}}}, 0);
  const MigrationResult res = fm.migrate_cg(0, 1, 1000);
  ASSERT_EQ(res.status, MigrationStatus::kMigrated);
  EXPECT_EQ(res.dp, cg_);
  EXPECT_EQ(fm.cg_fabric(0).resident_count(), 0u);
  EXPECT_EQ(fm.cg_fabric(1).resident_count(), 1u);
  // Nothing left to move.
  EXPECT_EQ(fm.migrate_cg(0, 1, 2000).status,
            MigrationStatus::kNothingToMigrate);
}

TEST_F(MigrationTest, FragmentationFloorIsIrreducibleUnderQuarantineSplit) {
  FabricManager fm(0, 4, &table_);
  fm.quarantine_prc(2, 0);
  fill_prcs(fm, 1);  // lands on PRC 0
  // Free space {1, 3} is split by the quarantined PRC 2: fragmentation 0.5
  // and no migration can merge it — the floor equals the live value.
  EXPECT_DOUBLE_EQ(fg_fragmentation(fm), 0.5);
  EXPECT_DOUBLE_EQ(fg_fragmentation_floor(fm), 0.5);
  EXPECT_EQ(fg_compaction_opportunity(fm), 1u);
  DefragConfig cfg;
  cfg.enabled = true;
  const DefragReport rep = DefragPolicy(cfg).compact(fm, 10 * fg_cost());
  EXPECT_EQ(rep.migrated, 0u);
  EXPECT_DOUBLE_EQ(rep.fragmentation_after, 0.5);
}

TEST_F(MigrationTest, DefragCompactsScatteredHolesToZero) {
  FaultModel model(always_fail_fg());
  FabricManager fm(0, 8, &table_);
  punch_holes(fm, model);
  fm.attach_fault_model(nullptr);  // compaction itself runs fault-free

  DefragConfig cfg;
  cfg.enabled = true;
  const Cycles now = 20 * fg_cost();
  const DefragReport rep = DefragPolicy(cfg).compact(fm, now);
  EXPECT_EQ(rep.migrated, 2u);
  EXPECT_EQ(rep.attempted, 2u);
  EXPECT_DOUBLE_EQ(rep.fragmentation_before, 0.5);
  EXPECT_DOUBLE_EQ(rep.fragmentation_after, 0.0);
  EXPECT_DOUBLE_EQ(fg_fragmentation(fm), fg_fragmentation_floor(fm));
  // Highest occupants moved into the lowest holes; the free run is the tail.
  EXPECT_EQ(fm.fg_fabric().prc(0).occupant, fg_[7]);
  EXPECT_EQ(fm.fg_fabric().prc(2).occupant, fg_[6]);
  EXPECT_TRUE(fm.fg_fabric().prc(6).empty());
  EXPECT_TRUE(fm.fg_fabric().prc(7).empty());
  EXPECT_GE(rep.ready_at, now) << "copies are real port work, not free";
}

TEST_F(MigrationTest, DefragStopsAfterTwoConsecutiveCopyFailures) {
  FaultModel model(always_fail_fg());
  FabricManager fm(0, 8, &table_);
  punch_holes(fm, model);  // model stays attached: every copy stream fails

  DefragConfig cfg;
  cfg.enabled = true;
  const DefragReport rep = DefragPolicy(cfg).compact(fm, 20 * fg_cost());
  EXPECT_EQ(rep.attempted, 2u);
  EXPECT_EQ(rep.migrated, 0u);
  EXPECT_DOUBLE_EQ(rep.fragmentation_after, 0.5) << "holes survive the pass";
  EXPECT_EQ(fm.fg_fabric().prc(7).occupant, fg_[7])
      << "failed copies must leave their sources serving";
}

TEST_F(MigrationTest, DefragRetriesFromAnotherSourceAfterQuarantine) {
  FaultModel model(always_fail_fg());
  FabricManager fm(0, 8, &table_);
  punch_holes(fm, model);
  fm.attach_fault_model(nullptr);
  // The fabric hosting the would-be first source dies before the pass: the
  // quarantine evicts PRC 7, and the policy must fall through to PRC 6/5
  // instead of wedging on the dead container.
  fm.quarantine_prc(7, 20 * fg_cost());
  DefragConfig cfg;
  cfg.enabled = true;
  const DefragReport rep = DefragPolicy(cfg).compact(fm, 20 * fg_cost());
  EXPECT_EQ(rep.migrated, 2u);
  EXPECT_DOUBLE_EQ(fg_fragmentation(fm), fg_fragmentation_floor(fm));
  EXPECT_EQ(fm.fg_fabric().prc(0).occupant, fg_[6]);
  EXPECT_EQ(fm.fg_fabric().prc(2).occupant, fg_[5]);
}

TEST_F(MigrationTest, RecoverRespectsEnableAndThresholdGates) {
  FaultModel model(always_fail_fg());
  FabricManager fm(0, 8, &table_);
  punch_holes(fm, model);
  fm.attach_fault_model(nullptr);

  DefragConfig off;  // enabled defaults to false
  EXPECT_EQ(DefragPolicy(off).recover(fm, 0).migrated, 0u);

  DefragConfig high;
  high.enabled = true;
  high.min_fragmentation = 0.9;  // above the live 0.5
  EXPECT_EQ(DefragPolicy(high).recover(fm, 0).migrated, 0u);
  EXPECT_DOUBLE_EQ(fg_fragmentation(fm), 0.5) << "gated passes do nothing";

  DefragConfig on;
  on.enabled = true;
  on.min_fragmentation = 0.25;
  EXPECT_EQ(DefragPolicy(on).recover(fm, 20 * fg_cost()).migrated, 2u);
  EXPECT_DOUBLE_EQ(fg_fragmentation(fm), 0.0);
}

TEST_F(MigrationTest, MigrationBudgetBoundsOnePass) {
  FaultModel model(always_fail_fg());
  FabricManager fm(0, 8, &table_);
  punch_holes(fm, model);
  fm.attach_fault_model(nullptr);
  DefragConfig cfg;
  cfg.enabled = true;
  cfg.max_migrations_per_pass = 1;
  const DefragReport first = DefragPolicy(cfg).compact(fm, 20 * fg_cost());
  EXPECT_EQ(first.migrated, 1u);
  // One move fills hole 0 and opens PRC 7: free {2, 7} is still split.
  EXPECT_DOUBLE_EQ(first.fragmentation_after, 0.5);
  // The next (equally bounded) pass finishes the job.
  const DefragReport second = DefragPolicy(cfg).compact(fm, 30 * fg_cost());
  EXPECT_EQ(second.migrated, 1u);
  EXPECT_DOUBLE_EQ(second.fragmentation_after, 0.0);
}

TEST(MigrationMRts, DefaultConfigNeverMigrates) {
  H264AppParams params;
  params.frames = 2;
  const H264Application app = build_h264_application(params);
  MRtsConfig config;
  config.fault = FaultModelConfig::uniform(0.2, 5);
  MRts rts(app.library, 1, 4, config);
  const AppRunResult res = run_application(rts, app.trace);
  EXPECT_GT(res.total_cycles, 0u);
  EXPECT_EQ(rts.run_stats().defrag_passes, 0u);
  EXPECT_EQ(rts.run_stats().defrag_migrations, 0u);
}

TEST(MigrationMRts, DefragEnabledRunCompletesAndCounts) {
  H264AppParams params;
  params.frames = 2;
  const H264Application app = build_h264_application(params);
  MRtsConfig config;
  config.fault = FaultModelConfig::uniform(0.2, 5);
  config.defrag.enabled = true;
  config.defrag.min_fragmentation = 0.1;
  MRts rts(app.library, 1, 4, config);
  const AppRunResult res = run_application(rts, app.trace);
  EXPECT_GT(res.total_cycles, 0u);
  if (rts.run_stats().defrag_migrations > 0) {
    EXPECT_GT(rts.run_stats().defrag_passes, 0u)
        << "migrations only happen inside recovery passes";
  }
}

}  // namespace
}  // namespace mrts
