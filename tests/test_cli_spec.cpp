// Tests for the declarative CLI flag tables (util/cli_spec.h). The tables
// are the single source of truth for the tool binaries: the parser looks
// flags up in them and --help is rendered from them, so these tests pin the
// rendering/lookup contract that keeps help text and accepted flags in
// lockstep (the bug this PR fixes: `run` had grown flags its usage text
// never mentioned).

#include <gtest/gtest.h>

#include <string>

#include "util/cli_spec.h"

namespace mrts {
namespace {

CliSpec make_spec() {
  CliSpec spec("toolbin", "does tool things",
               "exit codes: 0 success, 1 usage error, 2 input error");
  CliVerb& run = spec.add_verb("run", "<app> [n]", "run an app");
  run.flags = {
      {"--trace", "<file>", "write a trace"},
      {"--fast", "", "skip the slow path"},
  };
  spec.add_verb("list", "", "list things");
  return spec;
}

TEST(CliSpec, VerbAndFlagLookup) {
  const CliSpec spec = make_spec();
  ASSERT_NE(spec.verb("run"), nullptr);
  ASSERT_NE(spec.verb("list"), nullptr);
  EXPECT_EQ(spec.verb("nope"), nullptr);

  const CliVerb& run = *spec.verb("run");
  const CliFlag* trace = CliSpec::flag(run, "--trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->value, "<file>");  // takes a value
  const CliFlag* fast = CliSpec::flag(run, "--fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_TRUE(fast->value.empty());  // boolean flag
  // Unknown flags are a lookup miss, which the binaries turn into usage().
  EXPECT_EQ(CliSpec::flag(run, "--bogus"), nullptr);
  EXPECT_EQ(CliSpec::flag(*spec.verb("list"), "--trace"), nullptr);
}

TEST(CliSpec, HelpListsEveryVerbEveryFlagAndTheExitNote) {
  const CliSpec spec = make_spec();
  const std::string help = spec.help();
  // The core contract: anything in the table appears in the help text. The
  // parser accepts exactly the table, so help cannot drift from reality.
  for (const CliVerb& verb : spec.verbs()) {
    if (!verb.name.empty()) {
      EXPECT_NE(help.find(verb.name), std::string::npos) << verb.name;
    }
    if (!verb.positionals.empty()) {
      EXPECT_NE(help.find(verb.positionals), std::string::npos);
    }
    for (const CliFlag& flag : verb.flags) {
      EXPECT_NE(help.find(flag.name), std::string::npos) << flag.name;
      EXPECT_NE(help.find(flag.help), std::string::npos) << flag.name;
    }
  }
  EXPECT_NE(help.find("toolbin"), std::string::npos);
  EXPECT_NE(help.find("exit codes: 0 success, 1 usage error, 2 input error"),
            std::string::npos);
}

TEST(CliSpec, UsageLineMentionsFlagsOnlyWhenTheVerbHasAny) {
  const CliSpec spec = make_spec();
  const std::string with_flags = spec.verb_help(*spec.verb("run"));
  EXPECT_NE(with_flags.find("[flags]"), std::string::npos);
  const std::string without = spec.verb_help(*spec.verb("list"));
  EXPECT_EQ(without.find("[flags]"), std::string::npos);
  EXPECT_EQ(without.find("--"), std::string::npos);
}

TEST(CliSpec, VerblessBinaryRendersABareUsageLine) {
  CliSpec spec("served", "serves", "exit codes: 0 success");
  CliVerb& main_verb = spec.add_verb("", "", "");
  main_verb.flags = {{"--socket", "<path>", "socket path"}};
  const std::string help = spec.help();
  EXPECT_NE(help.find("served"), std::string::npos);
  EXPECT_NE(help.find("--socket"), std::string::npos);
  EXPECT_NE(help.find("[flags]"), std::string::npos);
}

}  // namespace
}  // namespace mrts
