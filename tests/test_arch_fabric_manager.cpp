// Unit tests for FabricManager: installing selections, data-path reuse and
// eviction across functional blocks, monoCG acquisition and availability
// queries.

#include <gtest/gtest.h>

#include "arch/fabric_manager.h"

namespace mrts {
namespace {

class FabricManagerTest : public ::testing::Test {
 protected:
  FabricManagerTest() {
    DataPathDesc fg1;
    fg1.name = "fg1";
    fg1.grain = Grain::kFine;
    fg1_ = table_.add(fg1);

    DataPathDesc fg2;
    fg2.name = "fg2";
    fg2.grain = Grain::kFine;
    fg2_ = table_.add(fg2);

    DataPathDesc cg1;
    cg1.name = "cg1";
    cg1.grain = Grain::kCoarse;
    cg1.context_instructions = 30;
    cg1_ = table_.add(cg1);

    DataPathDesc mono;
    mono.name = "mono";
    mono.grain = Grain::kCoarse;
    mono.context_instructions = 32;
    mono_ = table_.add(mono);
  }

  Cycles fg_cost() const { return table_[fg1_].reconfig_cycles(); }

  DataPathTable table_;
  DataPathId fg1_, fg2_, cg1_, mono_;
};

TEST_F(FabricManagerTest, InstallSchedulesFgSeriallyAndCgFast) {
  FabricManager fm(2, 2, &table_);
  const auto placements = fm.install(
      {{IseId{0}, KernelId{0}, {cg1_, fg1_, fg2_}}}, /*now=*/0);
  ASSERT_EQ(placements.size(), 1u);
  const auto& p = placements[0];
  ASSERT_EQ(p.instance_ready.size(), 3u);
  EXPECT_EQ(p.instance_ready[0], 60u);              // CG context load
  EXPECT_EQ(p.instance_ready[1], fg_cost());        // first FG bitstream
  EXPECT_EQ(p.instance_ready[2], 2 * fg_cost());    // serialized behind it
  // prefix_ready is the running maximum.
  EXPECT_EQ(p.prefix_ready[0], 60u);
  EXPECT_EQ(p.prefix_ready[1], fg_cost());
  EXPECT_EQ(p.prefix_ready[2], 2 * fg_cost());
  EXPECT_EQ(p.reused_instances, 0u);
}

TEST_F(FabricManagerTest, InstallRejectsOversizedSelection) {
  FabricManager fm(0, 1, &table_);
  EXPECT_THROW(
      fm.install({{IseId{0}, KernelId{0}, {fg1_, fg2_}}}, 0),
      std::invalid_argument);
  EXPECT_THROW(fm.install({{IseId{0}, KernelId{0}, {cg1_}}}, 0),
               std::invalid_argument);
}

TEST_F(FabricManagerTest, ReinstallReusesLoadedDataPaths) {
  FabricManager fm(1, 2, &table_);
  fm.install({{IseId{0}, KernelId{0}, {fg1_, cg1_}}}, 0);
  // Second block, same ISE: everything is already there (or loading).
  const auto placements =
      fm.install({{IseId{0}, KernelId{0}, {fg1_, cg1_}}}, 1000);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].reused_instances, 2u);
  // Ready times keep the original completion times.
  EXPECT_EQ(placements[0].instance_ready[0], fg_cost());
  EXPECT_EQ(placements[0].instance_ready[1], 60u);
}

TEST_F(FabricManagerTest, EvictionCancelsPendingLoadOfReplacedPath) {
  FabricManager fm(0, 1, &table_);
  fm.install({{IseId{0}, KernelId{0}, {fg1_}}}, 0);
  // Before fg1 finishes loading, a new selection wants fg2 instead. The
  // pending fg1 job (which started at t=0, so it is running) blocks the
  // port until it completes; fg2 is serialized behind it.
  const auto placements = fm.install({{IseId{1}, KernelId{1}, {fg2_}}}, 100);
  EXPECT_EQ(placements[0].instance_ready[0], 2 * fg_cost());

  // But a job that has NOT started yet is cancelled: enqueue two, replace
  // the queued (not running) one.
  FabricManager fm2(0, 2, &table_);
  fm2.install({{IseId{0}, KernelId{0}, {fg1_, fg2_}}}, 0);
  // fg2's load is queued behind fg1. Replace the selection with one that
  // keeps fg1 only; fg2's pending job must be cancelled.
  fm2.install({{IseId{2}, KernelId{0}, {fg1_}}}, 100);
  EXPECT_EQ(fm2.reconfig().fg_port().pending(100).size(), 1u);
}

TEST_F(FabricManagerTest, AvailableInstancesCountsBothFabrics) {
  FabricManager fm(2, 2, &table_);
  fm.install({{IseId{0}, KernelId{0}, {fg1_, cg1_}}}, 0);
  EXPECT_EQ(fm.available_instances(fg1_, 0), 0u);  // still loading
  EXPECT_EQ(fm.available_instances(fg1_, fg_cost()), 1u);
  EXPECT_EQ(fm.available_instances(cg1_, 60), 1u);
  EXPECT_EQ(fm.available_instances(fg2_, fg_cost()), 0u);
}

TEST_F(FabricManagerTest, MonoCgPrefersUnreservedFabric) {
  FabricManager fm(2, 0, &table_);
  fm.install({{IseId{0}, KernelId{0}, {cg1_}}}, 0);
  EXPECT_EQ(fm.free_cg_fabrics(), 1u);
  const auto ready = fm.acquire_mono_cg(mono_, 100);
  ASSERT_TRUE(ready.has_value());
  // 32 instructions x 2 cycles = 64 cycle stream + 2 cycle context switch.
  EXPECT_EQ(*ready, 100u + 64u + 2u);
  // The selection's fabric is untouched.
  EXPECT_TRUE(fm.cg_fabric(0).slot_of(cg1_).has_value());
  EXPECT_FALSE(fm.cg_fabric(0).slot_of(mono_).has_value());
}

TEST_F(FabricManagerTest, MonoCgUsesFreeContextSlotOfReservedFabric) {
  // All CG fabrics are reserved by the selection, but the context memory
  // stores multiple contexts: the monoCG shares the fabric and pays only
  // the 2-cycle context switch at execution time.
  FabricManager fm(1, 0, &table_);
  fm.install({{IseId{0}, KernelId{0}, {cg1_}}}, 0);
  EXPECT_EQ(fm.free_cg_fabrics(), 0u);
  const auto ready = fm.acquire_mono_cg(mono_, 100);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(*ready, 100u + 64u + 2u);
  // The selected context is still resident.
  EXPECT_TRUE(fm.cg_fabric(0).slot_of(cg1_).has_value());
}

TEST_F(FabricManagerTest, MonoCgFailsWhenAllContextSlotsTaken) {
  CgFabricParams tiny;
  tiny.max_resident_contexts = 1;
  FabricManager fm(1, 0, &table_, tiny);
  fm.install({{IseId{0}, KernelId{0}, {cg1_}}}, 0);
  EXPECT_FALSE(fm.acquire_mono_cg(mono_, 100).has_value());
}

TEST_F(FabricManagerTest, MonoCgReacquisitionIsCheap) {
  FabricManager fm(1, 0, &table_);
  const auto first = fm.acquire_mono_cg(mono_, 0);
  ASSERT_TRUE(first.has_value());
  const auto again = fm.acquire_mono_cg(mono_, *first + 100);
  ASSERT_TRUE(again.has_value());
  // Already resident and active: no load, no switch.
  EXPECT_EQ(*again, *first + 100);
}

TEST_F(FabricManagerTest, MonoCgRejectsFgDataPath) {
  FabricManager fm(1, 1, &table_);
  EXPECT_THROW(fm.acquire_mono_cg(fg1_, 0), std::invalid_argument);
}

TEST_F(FabricManagerTest, UsageReflectsReservations) {
  FabricManager fm(2, 3, &table_);
  fm.install({{IseId{0}, KernelId{0}, {fg1_, fg2_, cg1_}}}, 0);
  const FabricUsage u = fm.usage();
  EXPECT_EQ(u.total_prcs, 3u);
  EXPECT_EQ(u.total_cg, 2u);
  EXPECT_EQ(u.reserved_prcs, 2u);
  EXPECT_EQ(u.reserved_cg, 1u);
}

TEST_F(FabricManagerTest, ResetClearsEverything) {
  FabricManager fm(1, 1, &table_);
  fm.install({{IseId{0}, KernelId{0}, {fg1_}}}, 0);
  fm.reset();
  EXPECT_EQ(fm.available_instances(fg1_, kNeverCycles - 1), 0u);
  EXPECT_EQ(fm.usage().reserved_prcs, 0u);
  EXPECT_EQ(fm.fg_port_free_at(5), 5u);
}

TEST_F(FabricManagerTest, NullTableRejected) {
  EXPECT_THROW(FabricManager(1, 1, nullptr), std::invalid_argument);
}

TEST_F(FabricManagerTest, InstanceReadyTimesMergedAcrossFabrics) {
  FabricManager fm(2, 1, &table_);
  fm.install({{IseId{0}, KernelId{0}, {cg1_}}, {IseId{1}, KernelId{1}, {fg1_}}},
             0);
  EXPECT_EQ(fm.instance_ready_times(cg1_).size(), 1u);
  EXPECT_EQ(fm.instance_ready_times(fg1_).size(), 1u);
  EXPECT_TRUE(fm.instance_ready_times(fg2_).empty());
}

}  // namespace
}  // namespace mrts
