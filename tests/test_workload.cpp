// Tests of the workload models: content model, schedule generator, the H.264
// application and the Section 2 deblocking-filter case study (Fig. 1 / Fig. 2
// structure).

#include <gtest/gtest.h>

#include <set>

#include "workload/content_model.h"
#include "workload/deblocking_case_study.h"
#include "workload/h264_app.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

TEST(ContentModel, DeterministicFromSeed) {
  ContentParams p;
  p.frames = 32;
  p.seed = 77;
  const ContentModel a(p);
  const ContentModel b(p);
  for (unsigned f = 0; f < 32; ++f) {
    EXPECT_DOUBLE_EQ(a.motion(f), b.motion(f));
    EXPECT_DOUBLE_EQ(a.detail(f), b.detail(f));
  }
}

TEST(ContentModel, ValuesStayInUnitInterval) {
  ContentParams p;
  p.frames = 200;
  p.seed = 5;
  const ContentModel m(p);
  for (unsigned f = 0; f < 200; ++f) {
    EXPECT_GE(m.motion(f), 0.0);
    EXPECT_LE(m.motion(f), 1.0);
    EXPECT_GE(m.detail(f), 0.0);
    EXPECT_LE(m.detail(f), 1.0);
  }
}

TEST(ContentModel, ActuallyVaries) {
  ContentParams p;
  p.frames = 64;
  p.seed = 11;
  const ContentModel m(p);
  double lo = 1.0;
  double hi = 0.0;
  for (unsigned f = 0; f < 64; ++f) {
    lo = std::min(lo, m.motion(f));
    hi = std::max(hi, m.motion(f));
  }
  EXPECT_GT(hi - lo, 0.15) << "motion process should vary across frames";
}

TEST(ContentModel, RejectsZeroFrames) {
  ContentParams p;
  p.frames = 0;
  EXPECT_THROW(ContentModel m(p), std::invalid_argument);
}

TEST(ContentModel, OutOfRangeFrameThrows) {
  ContentParams p;
  p.frames = 2;
  const ContentModel m(p);
  EXPECT_THROW(m.motion(2), std::out_of_range);
  EXPECT_THROW(m.detail(99), std::out_of_range);
  EXPECT_THROW(m.scene_change(5), std::out_of_range);
}

TEST(WorkloadGen, MacroblockLoopProducesExpectedCounts) {
  IseLibrary lib;
  const KernelId k = lib.add_kernel("K", 100);
  Rng rng(1);
  const FunctionalBlockInstance inst = make_block_instance(
      FunctionalBlockId{0}, /*macroblocks=*/10,
      {{k, 3.0, 20, 0.0}}, /*entry_gap=*/100, /*tail_gap=*/50, rng);
  EXPECT_EQ(inst.executions_of(k), 30u);
  EXPECT_EQ(inst.tail_gap, 50u);
  // First event carries the entry gap.
  EXPECT_EQ(inst.events.front().gap_before, 120u);
}

TEST(WorkloadGen, FractionalRepetitionsCarryRemainder) {
  IseLibrary lib;
  const KernelId k = lib.add_kernel("K", 100);
  Rng rng(1);
  const FunctionalBlockInstance inst = make_block_instance(
      FunctionalBlockId{0}, 100, {{k, 0.5, 10, 0.0}}, 0, 0, rng);
  EXPECT_EQ(inst.executions_of(k), 50u);
}

TEST(WorkloadGen, GapJitterIsBoundedAndDeterministic) {
  IseLibrary lib;
  const KernelId k = lib.add_kernel("K", 100);
  Rng rng1(7);
  Rng rng2(7);
  const auto a = make_block_instance(FunctionalBlockId{0}, 50,
                                     {{k, 2.0, 100, 0.25}}, 0, 0, rng1);
  const auto b = make_block_instance(FunctionalBlockId{0}, 50,
                                     {{k, 2.0, 100, 0.25}}, 0, 0, rng2);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].gap_before, b.events[i].gap_before);
    EXPECT_GE(a.events[i].gap_before, 75u);
    EXPECT_LE(a.events[i].gap_before, 125u);
  }
}

TEST(H264App, ThreeBlocksPerFrameInOrder) {
  H264AppParams params;
  params.frames = 4;
  const H264Application app = build_h264_application(params);
  ASSERT_EQ(app.trace.blocks.size(), 12u);
  for (unsigned f = 0; f < 4; ++f) {
    EXPECT_EQ(app.trace.blocks[f * 3 + 0].functional_block, app.fb_me);
    EXPECT_EQ(app.trace.blocks[f * 3 + 1].functional_block, app.fb_ee);
    EXPECT_EQ(app.trace.blocks[f * 3 + 2].functional_block, app.fb_lf);
  }
}

TEST(H264App, TwelveKernelsWithIseFamilies) {
  const H264Application app = build_h264_application({});
  EXPECT_EQ(app.library.num_kernels(), 12u);
  for (const KernelId k : app.all_kernels()) {
    EXPECT_FALSE(app.library.kernel(k).ises.empty());
    EXPECT_TRUE(app.library.kernel(k).has_mono_cg());
  }
  // The encoding engine block has six kernels (the paper: "the biggest one
  // contains more than six kernels").
  const auto& ee = app.trace.blocks[1];
  std::set<std::uint32_t> seen;
  for (const auto& ev : ee.events) seen.insert(raw(ev.kernel));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(H264App, DeterministicFromSeed) {
  H264AppParams params;
  params.frames = 3;
  const H264Application a = build_h264_application(params);
  const H264Application b = build_h264_application(params);
  ASSERT_EQ(a.trace.blocks.size(), b.trace.blocks.size());
  for (std::size_t i = 0; i < a.trace.blocks.size(); ++i) {
    ASSERT_EQ(a.trace.blocks[i].events.size(), b.trace.blocks[i].events.size());
  }
}

TEST(H264App, ExecutionCountsVaryAcrossFrames) {
  // This is the Fig. 2 property: the per-frame execution count of the
  // deblocking-filter kernel changes with the content.
  H264AppParams params;
  params.frames = 16;
  const H264Application app = build_h264_application(params);
  std::set<std::size_t> distinct;
  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  for (unsigned f = 0; f < 16; ++f) {
    const std::size_t e = app.lf_filter_executions(f);
    distinct.insert(e);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GE(distinct.size(), 8u);
  EXPECT_GT(hi, lo + lo / 10) << "at least ~10% swing between frames";
}

TEST(H264App, ProgrammedTriggersAreSharedAcrossInstances) {
  H264AppParams params;
  params.frames = 3;
  const H264Application app = build_h264_application(params);
  const auto& first_lf = app.trace.blocks[2].programmed;
  const auto& later_lf = app.trace.blocks[8].programmed;
  ASSERT_EQ(first_lf.entries.size(), later_lf.entries.size());
  for (std::size_t i = 0; i < first_lf.entries.size(); ++i) {
    EXPECT_EQ(first_lf.entries[i], later_lf.entries[i]);
  }
}

TEST(H264App, WorkloadScaleScalesExecutions) {
  H264AppParams small;
  small.frames = 2;
  small.workload_scale = 0.5;
  H264AppParams big;
  big.frames = 2;
  big.workload_scale = 1.0;
  const auto s = build_h264_application(small);
  const auto b = build_h264_application(big);
  EXPECT_LT(s.trace.total_events(), b.trace.total_events());
}

// --- Deblocking case study (Section 2, Fig. 1) ------------------------------

TEST(DeblockingCaseStudy, ThreeIsesWithPaperStructure) {
  const DeblockingCaseStudy cs = build_deblocking_case_study();
  const IseVariant& i1 = cs.library.ise(cs.ise1);
  const IseVariant& i2 = cs.library.ise(cs.ise2);
  const IseVariant& i3 = cs.library.ise(cs.ise3);
  EXPECT_TRUE(i1.is_fg_only());
  EXPECT_TRUE(i2.is_cg_only());
  EXPECT_TRUE(i3.is_multi_grained());
  // Execution speed: FG fastest, CG slowest accelerated, MG in between.
  EXPECT_LT(i1.full_latency(), i3.full_latency());
  EXPECT_LT(i3.full_latency(), i2.full_latency());
  // Reconfiguration: CG in microseconds, FG in milliseconds.
  const auto& table = cs.library.data_paths();
  EXPECT_LT(i2.worst_case_reconfig_cycles(table), us_to_cycles(1.0));
  EXPECT_GT(i1.worst_case_reconfig_cycles(table), ms_to_cycles(2.0));
}

TEST(DeblockingCaseStudy, PifRegionsAppearInPaperOrder) {
  // Fig. 1: ISE-2 (CG) dominates for few executions, ISE-3 (MG) in the
  // middle, ISE-1 (FG) for many executions.
  const DeblockingCaseStudy cs = build_deblocking_case_study();
  auto best_at = [&cs](double n) {
    const double p1 = case_study_pif(cs, cs.ise1, n);
    const double p2 = case_study_pif(cs, cs.ise2, n);
    const double p3 = case_study_pif(cs, cs.ise3, n);
    if (p1 >= p2 && p1 >= p3) return 1;
    if (p2 >= p1 && p2 >= p3) return 2;
    return 3;
  };
  EXPECT_EQ(best_at(500), 2);
  EXPECT_EQ(best_at(2000), 2);
  EXPECT_EQ(best_at(4000), 3);
  EXPECT_EQ(best_at(6000), 3);
  EXPECT_EQ(best_at(9000), 1);
}

TEST(DeblockingCaseStudy, CrossoversAreOrdered) {
  const DeblockingCaseStudy cs = build_deblocking_case_study();
  const double mg_over_cg = pif_crossover(cs, cs.ise3, cs.ise2);
  const double fg_over_mg = pif_crossover(cs, cs.ise1, cs.ise3);
  EXPECT_GT(mg_over_cg, 1000.0);
  EXPECT_LT(mg_over_cg, 5000.0);
  EXPECT_GT(fg_over_mg, mg_over_cg);
  EXPECT_LT(fg_over_mg, 10'000.0);
}

TEST(DeblockingCaseStudy, PifIsMonotoneInExecutions) {
  const DeblockingCaseStudy cs = build_deblocking_case_study();
  for (IseId ise : {cs.ise1, cs.ise2, cs.ise3}) {
    double prev = 0.0;
    for (double n = 100; n <= 10'000; n += 100) {
      const double pif = case_study_pif(cs, ise, n);
      EXPECT_GE(pif, prev);
      prev = pif;
    }
  }
}

}  // namespace
}  // namespace mrts
