// Unit tests for the ISE model: variant validation, the library registry and
// the properties of the generated ISE families (ise_builder).

#include <gtest/gtest.h>

#include "isa/ise_builder.h"
#include "isa/ise_library.h"
#include "isa/trigger.h"

namespace mrts {
namespace {

IseLibrary toy_library() {
  IseLibrary lib;
  DataPathDesc fg;
  fg.name = "fg";
  fg.grain = Grain::kFine;
  lib.data_paths().add(fg);
  DataPathDesc cg;
  cg.name = "cg";
  cg.grain = Grain::kCoarse;
  lib.data_paths().add(cg);
  return lib;
}

TEST(IseVariant, ValidateCatchesMalformedVariants) {
  IseLibrary lib = toy_library();
  const KernelId k = lib.add_kernel("K", 100);

  IseVariant ok;
  ok.kernel = k;
  ok.name = "ok";
  ok.data_paths = {DataPathId{0}};
  ok.latency_after = {100, 40};
  EXPECT_NO_THROW(lib.add_ise(ok));

  IseVariant wrong_size = ok;
  wrong_size.name = "wrong_size";
  wrong_size.latency_after = {100};
  EXPECT_THROW(lib.add_ise(wrong_size), std::invalid_argument);

  IseVariant increasing = ok;
  increasing.name = "increasing";
  increasing.latency_after = {100, 120};
  EXPECT_THROW(lib.add_ise(increasing), std::invalid_argument);

  IseVariant no_dps = ok;
  no_dps.name = "no_dps";
  no_dps.data_paths = {};
  no_dps.latency_after = {100};
  EXPECT_THROW(lib.add_ise(no_dps), std::invalid_argument);

  IseVariant zero_latency = ok;
  zero_latency.name = "zero_latency";
  zero_latency.latency_after = {100, 0};
  EXPECT_THROW(lib.add_ise(zero_latency), std::invalid_argument);

  IseVariant bad_base = ok;
  bad_base.name = "bad_base";
  bad_base.latency_after = {90, 40};  // != kernel sw latency
  EXPECT_THROW(lib.add_ise(bad_base), std::invalid_argument);

  IseVariant fg_mono = ok;
  fg_mono.name = "fg_mono";
  fg_mono.is_mono_cg = true;  // monoCG must be CG-only
  EXPECT_THROW(lib.add_ise(fg_mono), std::invalid_argument);
}

TEST(IseVariant, ResourceDemandAndGrainClassification) {
  IseLibrary lib = toy_library();
  const KernelId k = lib.add_kernel("K", 100);
  IseVariant mg;
  mg.kernel = k;
  mg.name = "mg";
  mg.data_paths = {DataPathId{0}, DataPathId{1}, DataPathId{0}};
  mg.latency_after = {100, 80, 60, 40};
  const IseId id = lib.add_ise(mg);
  const IseVariant& v = lib.ise(id);
  EXPECT_EQ(v.fg_units, 2u);
  EXPECT_EQ(v.cg_units, 1u);
  EXPECT_TRUE(v.is_multi_grained());
  EXPECT_FALSE(v.is_fg_only());
  EXPECT_TRUE(v.fits(2, 1));
  EXPECT_FALSE(v.fits(1, 1));
  EXPECT_FALSE(v.fits(2, 0));
}

TEST(IseVariant, WorstCaseReconfigIsMaxOfPortTimes) {
  IseLibrary lib = toy_library();
  const KernelId k = lib.add_kernel("K", 100);
  IseVariant v;
  v.kernel = k;
  v.name = "v";
  v.data_paths = {DataPathId{0}, DataPathId{1}};
  v.latency_after = {100, 50, 25};
  const IseId id = lib.add_ise(v);
  const auto& table = lib.data_paths();
  const Cycles fg = table[DataPathId{0}].reconfig_cycles();
  EXPECT_EQ(lib.ise(id).worst_case_reconfig_cycles(table), fg);
}

TEST(IseLibrary, KernelRegistryAndLookup) {
  IseLibrary lib;
  const KernelId a = lib.add_kernel("A", 10);
  const KernelId b = lib.add_kernel("B", 20);
  EXPECT_EQ(lib.num_kernels(), 2u);
  EXPECT_EQ(lib.find_kernel("B"), b);
  EXPECT_EQ(lib.find_kernel("C"), kInvalidKernel);
  EXPECT_EQ(lib.kernel(a).sw_latency, 10u);
  EXPECT_THROW(lib.add_kernel("A", 5), std::invalid_argument);
  EXPECT_THROW(lib.add_kernel("", 5), std::invalid_argument);
  EXPECT_THROW(lib.add_kernel("Z", 0), std::invalid_argument);
  EXPECT_THROW(lib.kernel(KernelId{9}), std::out_of_range);
}

TEST(IseLibrary, MonoCgIsKeptOutOfCandidateList) {
  IseLibrary lib = toy_library();
  const KernelId k = lib.add_kernel("K", 100);
  IseVariant mono;
  mono.kernel = k;
  mono.name = "K.mono";
  mono.is_mono_cg = true;
  mono.data_paths = {DataPathId{1}};
  mono.latency_after = {100, 55};
  const IseId mono_id = lib.add_ise(mono);
  EXPECT_TRUE(lib.kernel(k).ises.empty());
  EXPECT_EQ(lib.kernel(k).mono_cg, mono_id);

  IseVariant second_mono = mono;
  second_mono.name = "K.mono2";
  EXPECT_THROW(lib.add_ise(second_mono), std::invalid_argument);
}

TEST(IseLibrary, FittingIsesFiltersByTotalCapacity) {
  IseLibrary lib = toy_library();
  const KernelId k = lib.add_kernel("K", 100);
  IseVariant small;
  small.kernel = k;
  small.name = "small";
  small.data_paths = {DataPathId{1}};
  small.latency_after = {100, 60};
  IseVariant big;
  big.kernel = k;
  big.name = "big";
  big.data_paths = {DataPathId{0}, DataPathId{0}, DataPathId{0}};
  big.latency_after = {100, 80, 60, 30};
  lib.add_ise(small);
  lib.add_ise(big);
  EXPECT_EQ(lib.fitting_ises(k, 2, 1).size(), 1u);  // only the CG one
  EXPECT_EQ(lib.fitting_ises(k, 3, 1).size(), 2u);
  EXPECT_EQ(lib.fitting_ises(k, 0, 0).size(), 0u);
}

// --- ise_builder ----------------------------------------------------------

class IseBuilderTest : public ::testing::Test {
 protected:
  IseBuilderTest() {
    spec_.kernel_name = "K";
    spec_.sw_latency = 1000;
    spec_.control_fraction = 0.3;
    spec_.fg_data_path_names = {"k_fg1", "k_fg2", "k_fg3"};
    spec_.cg_data_path_names = {"k_cg1", "k_cg2"};
    kernel_ = build_kernel_ises(lib_, spec_);
  }

  IseLibrary lib_;
  IseBuildSpec spec_;
  KernelId kernel_;
};

TEST_F(IseBuilderTest, GeneratesExpectedVariantFamily) {
  // FG1..FG3, CG1..CG2, and MG{1..2}x{1} (default sub-design sizes: 2 FG
  // control data paths, 1 CG data data path) = 3 + 2 + 2 = 7, plus monoCG.
  EXPECT_EQ(lib_.kernel(kernel_).ises.size(), 7u);
  EXPECT_TRUE(lib_.kernel(kernel_).has_mono_cg());
  EXPECT_NE(lib_.find_ise("K.FG3"), kInvalidIse);
  EXPECT_NE(lib_.find_ise("K.CG2"), kInvalidIse);
  EXPECT_NE(lib_.find_ise("K.MG2c1"), kInvalidIse);
  EXPECT_NE(lib_.find_ise("K.monoCG"), kInvalidIse);
}

TEST_F(IseBuilderTest, LatenciesAreMonotoneNonIncreasing) {
  for (IseId id : lib_.kernel(kernel_).ises) {
    const IseVariant& v = lib_.ise(id);
    for (std::size_t i = 1; i < v.latency_after.size(); ++i) {
      EXPECT_LE(v.latency_after[i], v.latency_after[i - 1]) << v.name;
    }
    EXPECT_EQ(v.latency_after.front(), 1000u) << v.name;
  }
}

TEST_F(IseBuilderTest, SmallerVariantsArePrefixesOfLarger) {
  const IseVariant& fg1 = lib_.ise(lib_.find_ise("K.FG1"));
  const IseVariant& fg3 = lib_.ise(lib_.find_ise("K.FG3"));
  ASSERT_LE(fg1.data_paths.size(), fg3.data_paths.size());
  for (std::size_t i = 0; i < fg1.data_paths.size(); ++i) {
    EXPECT_EQ(fg1.data_paths[i], fg3.data_paths[i]);
  }
}

TEST_F(IseBuilderTest, MgVariantsListCgDataPathsFirst) {
  const IseVariant& mg = lib_.ise(lib_.find_ise("K.MG2c1"));
  const auto& table = lib_.data_paths();
  ASSERT_EQ(mg.data_paths.size(), 3u);
  EXPECT_EQ(table[mg.data_paths[0]].grain, Grain::kCoarse);
  EXPECT_EQ(table[mg.data_paths[1]].grain, Grain::kFine);
  EXPECT_EQ(table[mg.data_paths[2]].grain, Grain::kFine);
  EXPECT_TRUE(mg.is_multi_grained());
}

TEST_F(IseBuilderTest, SharedDataPathNamesInternToSameId) {
  IseBuildSpec other = spec_;
  other.kernel_name = "L";
  other.fg_data_path_names = {"k_fg1", "l_fg"};  // shares k_fg1 with K
  build_kernel_ises(lib_, other);
  EXPECT_EQ(lib_.data_paths().find("k_fg1"), DataPathId{0});
  // No duplicate data path was created.
  std::size_t count = 0;
  for (const auto& dp : lib_.data_paths()) {
    if (dp.name == "k_fg1") ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST_F(IseBuilderTest, GrainMismatchOnSharedNameThrows) {
  IseBuildSpec bad = spec_;
  bad.kernel_name = "M";
  bad.cg_data_path_names = {"k_fg1"};  // previously registered as FG
  EXPECT_THROW(build_kernel_ises(lib_, bad), std::invalid_argument);
}

TEST_F(IseBuilderTest, FgIsFasterThanCgForControlKernels) {
  IseLibrary lib;
  IseBuildSpec ctrl;
  ctrl.kernel_name = "CTRL";
  ctrl.sw_latency = 1000;
  ctrl.control_fraction = 0.85;
  ctrl.fg_data_path_names = {"c_fg1", "c_fg2"};
  ctrl.cg_data_path_names = {"c_cg1"};
  const KernelId k = build_kernel_ises(lib, ctrl);
  (void)k;
  const Cycles fg_full = lib.ise(lib.find_ise("CTRL.FG2")).full_latency();
  const Cycles cg_full = lib.ise(lib.find_ise("CTRL.CG1")).full_latency();
  EXPECT_LT(fg_full, cg_full);
}

TEST_F(IseBuilderTest, CgIsFasterThanFgForDataKernels) {
  IseLibrary lib;
  IseBuildSpec data;
  data.kernel_name = "DATA";
  data.sw_latency = 1000;
  data.control_fraction = 0.1;
  data.fg_control_speedup = 8.0;
  data.fg_data_speedup = 3.0;
  data.cg_data_speedup = 8.0;
  data.fg_data_path_names = {"d_fg1", "d_fg2"};
  data.cg_data_path_names = {"d_cg1", "d_cg2"};
  build_kernel_ises(lib, data);
  const Cycles fg_full = lib.ise(lib.find_ise("DATA.FG2")).full_latency();
  const Cycles cg_full = lib.ise(lib.find_ise("DATA.CG2")).full_latency();
  EXPECT_LT(cg_full, fg_full);
}

TEST_F(IseBuilderTest, MonoCgSpeedupApplied) {
  const IseVariant& mono = lib_.ise(lib_.kernel(kernel_).mono_cg);
  EXPECT_TRUE(mono.is_mono_cg);
  EXPECT_NEAR(static_cast<double>(mono.full_latency()),
              1000.0 / spec_.mono_cg_speedup, 1.0);
  EXPECT_EQ(mono.cg_units, 1u);
}

TEST_F(IseBuilderTest, BadSpecsRejected) {
  IseLibrary lib;
  IseBuildSpec no_dps;
  no_dps.kernel_name = "X";
  no_dps.sw_latency = 100;
  EXPECT_THROW(build_kernel_ises(lib, no_dps), std::invalid_argument);

  IseBuildSpec bad_frac;
  bad_frac.kernel_name = "Y";
  bad_frac.sw_latency = 100;
  bad_frac.control_fraction = 1.5;
  bad_frac.fg_data_path_names = {"y_fg"};
  EXPECT_THROW(build_kernel_ises(lib, bad_frac), std::invalid_argument);
}

TEST(ModelLatency, InterpolatesBetweenBounds) {
  // No acceleration: latency == sw.
  EXPECT_EQ(model_latency(1000, 0.3, 8.0, 0.0, 6.0, 0.0, 0), 1000u);
  // Full acceleration: ctrl/8 + data/6.
  const Cycles full = model_latency(1000, 0.3, 8.0, 1.0, 6.0, 1.0, 0);
  EXPECT_NEAR(static_cast<double>(full), 300.0 / 8.0 + 700.0 / 6.0, 1.0);
  // Latency never below 1.
  EXPECT_GE(model_latency(1, 0.5, 100.0, 1.0, 100.0, 1.0, 0), 1u);
}

TEST(Trigger, BinaryEncodingRoundTrips) {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{7};
  ti.entries.push_back({KernelId{3}, 1234.0, 56'789, 321});
  ti.entries.push_back({KernelId{9}, 0.0, 0, 0});
  const auto bytes = encode_trigger(ti);
  EXPECT_EQ(bytes.size(), 8u + 2u * 16u);
  const TriggerInstruction back = decode_trigger(bytes);
  EXPECT_EQ(back.functional_block, ti.functional_block);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0], ti.entries[0]);
  EXPECT_EQ(back.entries[1], ti.entries[1]);
}

TEST(Trigger, EncodingSaturatesLargeValues) {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({KernelId{1}, 1e20, kNeverCycles, 5});
  const TriggerInstruction back = decode_trigger(encode_trigger(ti));
  EXPECT_EQ(back.entries[0].expected_executions, 4294967295.0);
  EXPECT_EQ(back.entries[0].time_to_first, 4294967295u);
}

TEST(Trigger, DecodeRejectsMalformedBytes) {
  EXPECT_THROW(decode_trigger({1, 2, 3}), std::invalid_argument);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({KernelId{1}, 10.0, 1, 1});
  auto bytes = encode_trigger(ti);
  bytes.pop_back();
  EXPECT_THROW(decode_trigger(bytes), std::invalid_argument);
}

TEST(Trigger, FindAndToString) {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{3};
  ti.entries.push_back({KernelId{1}, 10.0, 100, 20});
  ti.entries.push_back({KernelId{2}, 5.0, 50, 10});
  ASSERT_NE(ti.find(KernelId{2}), nullptr);
  EXPECT_EQ(ti.find(KernelId{2})->expected_executions, 5.0);
  EXPECT_EQ(ti.find(KernelId{9}), nullptr);
  const std::string s = to_string(ti);
  EXPECT_NE(s.find("fb=3"), std::string::npos);
  EXPECT_NE(s.find("K1"), std::string::npos);
}

}  // namespace
}  // namespace mrts
