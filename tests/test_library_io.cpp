// Tests for the ISE-library text format: round-trip fidelity, diagnostics
// and validation on load.

#include <gtest/gtest.h>

#include <cstdio>

#include "isa/ise_builder.h"
#include "isa/library_io.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

void expect_equivalent(const IseLibrary& a, const IseLibrary& b) {
  ASSERT_EQ(a.data_paths().size(), b.data_paths().size());
  for (std::size_t i = 0; i < a.data_paths().size(); ++i) {
    const auto& da = a.data_paths()[DataPathId{static_cast<std::uint32_t>(i)}];
    const auto& db = b.data_paths()[DataPathId{static_cast<std::uint32_t>(i)}];
    EXPECT_EQ(da.name, db.name);
    EXPECT_EQ(da.grain, db.grain);
    EXPECT_EQ(da.units, db.units);
    EXPECT_EQ(da.reconfig_cycles(), db.reconfig_cycles());
  }
  ASSERT_EQ(a.num_kernels(), b.num_kernels());
  for (const auto& ka : a.kernels()) {
    const KernelId kb = b.find_kernel(ka.name);
    ASSERT_NE(kb, kInvalidKernel) << ka.name;
    EXPECT_EQ(b.kernel(kb).sw_latency, ka.sw_latency);
    EXPECT_EQ(b.kernel(kb).ises.size(), ka.ises.size());
    EXPECT_EQ(b.kernel(kb).has_mono_cg(), ka.has_mono_cg());
  }
  ASSERT_EQ(a.num_ises(), b.num_ises());
  for (const auto& ia : a.ises()) {
    const IseId ib_id = b.find_ise(ia.name);
    ASSERT_NE(ib_id, kInvalidIse) << ia.name;
    const IseVariant& ib = b.ise(ib_id);
    EXPECT_EQ(ib.latency_after, ia.latency_after) << ia.name;
    EXPECT_EQ(ib.data_paths.size(), ia.data_paths.size()) << ia.name;
    EXPECT_EQ(ib.is_mono_cg, ia.is_mono_cg) << ia.name;
    EXPECT_EQ(ib.fg_units, ia.fg_units) << ia.name;
    EXPECT_EQ(ib.cg_units, ia.cg_units) << ia.name;
  }
}

TEST(LibraryIo, RoundTripsTheFullH264Library) {
  const H264Application app = build_h264_application({});
  const std::string text = serialize_library(app.library);
  const IseLibrary parsed = parse_library(text);
  expect_equivalent(app.library, parsed);
  // Serialization is a fixed point.
  EXPECT_EQ(serialize_library(parsed), text);
}

TEST(LibraryIo, ParsesHandWrittenLibrary) {
  const IseLibrary lib = parse_library(R"(
# a tiny library
datapath cond_fg FG units=1 bitstream=83047
datapath filt_cg CG units=1 ctx=30
kernel DBF sw=1000
ise DBF.MG kernel=DBF dps=filt_cg,cond_fg lat=1000,560,170
ise DBF.mono kernel=DBF mono dps=filt_cg lat=1000,520
)");
  EXPECT_EQ(lib.num_kernels(), 1u);
  EXPECT_EQ(lib.num_ises(), 2u);
  const IseVariant& mg = lib.ise(lib.find_ise("DBF.MG"));
  EXPECT_TRUE(mg.is_multi_grained());
  EXPECT_EQ(mg.full_latency(), 170u);
  EXPECT_TRUE(lib.kernel(lib.find_kernel("DBF")).has_mono_cg());
}

TEST(LibraryIo, DiagnosticsCarryLineNumbers) {
  try {
    parse_library("kernel K sw=100\nbogus directive\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(LibraryIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_library("datapath x XX\n"), std::invalid_argument);
  EXPECT_THROW(parse_library("kernel K\n"), std::invalid_argument);
  EXPECT_THROW(parse_library("ise I kernel=K dps=a lat=1,2\n"),
               std::invalid_argument);  // unknown kernel
  EXPECT_THROW(parse_library("kernel K sw=10\n"
                             "ise I kernel=K dps=missing lat=10,5\n"),
               std::invalid_argument);  // unknown data path
  EXPECT_THROW(parse_library("datapath d FG\nkernel K sw=10\n"
                             "ise I kernel=K dps=d lat=10,20\n"),
               std::invalid_argument);  // increasing latency (validation)
  EXPECT_THROW(parse_library("datapath d FG nonsense=1\n"),
               std::invalid_argument);
}

TEST(LibraryIo, SaveAndLoadFile) {
  IseLibrary lib;
  IseBuildSpec spec;
  spec.kernel_name = "K";
  spec.sw_latency = 500;
  spec.fg_data_path_names = {"k_fg"};
  spec.cg_data_path_names = {"k_cg"};
  build_kernel_ises(lib, spec);

  const std::string path = ::testing::TempDir() + "/mrts_lib_test.txt";
  save_library(lib, path);
  const IseLibrary loaded = load_library(path);
  expect_equivalent(lib, loaded);
  std::remove(path.c_str());
}

TEST(LibraryIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_library("/nonexistent/dir/lib.txt"), std::runtime_error);
}

}  // namespace
}  // namespace mrts
