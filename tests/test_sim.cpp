// Unit tests for the simulator layer: trigger derivation, block simulation
// (cycle conservation, observation correctness) and application profiling.

#include <gtest/gtest.h>

#include "baselines/risc_only_rts.h"
#include "isa/ise_builder.h"
#include "sim/app_simulator.h"
#include "sim/fb_simulator.h"
#include "sim/metrics.h"
#include "sim/schedule.h"

namespace mrts {
namespace {

IseLibrary one_kernel_library() {
  IseLibrary lib;
  IseBuildSpec spec;
  spec.kernel_name = "K";
  spec.sw_latency = 100;
  spec.control_fraction = 0.5;
  spec.fg_data_path_names = {"fg"};
  spec.cg_data_path_names = {"cg"};
  build_kernel_ises(lib, spec);
  return lib;
}

FunctionalBlockInstance simple_instance(KernelId k) {
  FunctionalBlockInstance inst;
  inst.functional_block = FunctionalBlockId{0};
  inst.events = {{k, 10}, {k, 20}, {k, 30}};
  inst.tail_gap = 40;
  inst.programmed.functional_block = FunctionalBlockId{0};
  inst.programmed.entries.push_back({k, 3.0, 10, 25});
  return inst;
}

TEST(DeriveTrigger, ComputesExecutionsTfTb) {
  const IseLibrary lib = one_kernel_library();
  const KernelId k = lib.find_kernel("K");
  const FunctionalBlockInstance inst = simple_instance(k);
  const TriggerInstruction ti =
      derive_trigger(inst, risc_latency_table(lib));
  ASSERT_EQ(ti.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(ti.entries[0].expected_executions, 3.0);
  EXPECT_EQ(ti.entries[0].time_to_first, 10u);
  // Gaps between executions: 20 and 30 -> average 25.
  EXPECT_EQ(ti.entries[0].time_between, 25u);
}

TEST(DeriveTrigger, MultipleKernelsInterleaved) {
  const IseLibrary lib = [] {
    IseLibrary l;
    IseBuildSpec a;
    a.kernel_name = "A";
    a.sw_latency = 10;
    a.fg_data_path_names = {"a_fg"};
    build_kernel_ises(l, a);
    IseBuildSpec b;
    b.kernel_name = "B";
    b.sw_latency = 20;
    b.fg_data_path_names = {"b_fg"};
    build_kernel_ises(l, b);
    return l;
  }();
  const KernelId a = lib.find_kernel("A");
  const KernelId b = lib.find_kernel("B");
  FunctionalBlockInstance inst;
  inst.functional_block = FunctionalBlockId{1};
  inst.events = {{a, 5}, {b, 0}, {a, 0}};
  const TriggerInstruction ti = derive_trigger(inst, risc_latency_table(lib));
  ASSERT_EQ(ti.entries.size(), 2u);
  const TriggerEntry* ea = ti.find(a);
  ASSERT_NE(ea, nullptr);
  EXPECT_DOUBLE_EQ(ea->expected_executions, 2.0);
  EXPECT_EQ(ea->time_to_first, 5u);
  // A's executions: [5,15) and [35,45): gap = 35-15 = 20.
  EXPECT_EQ(ea->time_between, 20u);
  const TriggerEntry* eb = ti.find(b);
  ASSERT_NE(eb, nullptr);
  EXPECT_EQ(eb->time_to_first, 15u);
}

TEST(RunBlock, CyclesAreConserved) {
  const IseLibrary lib = one_kernel_library();
  const KernelId k = lib.find_kernel("K");
  RiscOnlyRts rts(lib);
  const FbRunResult r = run_block(rts, simple_instance(k), 1000);
  // 10+100 + 20+100 + 30+100 + 40 tail = 400, no overhead for RISC-only.
  EXPECT_EQ(r.cycles, 400u);
  EXPECT_EQ(r.blocking_overhead, 0u);
  EXPECT_EQ(r.impl_executions[static_cast<std::size_t>(ImplKind::kRisc)], 3u);
  EXPECT_EQ(r.impl_cycles[static_cast<std::size_t>(ImplKind::kRisc)], 300u);
}

TEST(RunBlock, ObservationMatchesSchedule) {
  const IseLibrary lib = one_kernel_library();
  const KernelId k = lib.find_kernel("K");
  RiscOnlyRts rts(lib);
  const FbRunResult r = run_block(rts, simple_instance(k), 0);
  ASSERT_EQ(r.observed.kernels.size(), 1u);
  const ObservedKernelStats& obs = r.observed.kernels[0];
  EXPECT_DOUBLE_EQ(obs.executions, 3.0);
  EXPECT_EQ(obs.time_to_first, 10u);
  EXPECT_EQ(obs.time_between, 25u);
}

TEST(RunApplication, AccumulatesBlocks) {
  const IseLibrary lib = one_kernel_library();
  const KernelId k = lib.find_kernel("K");
  ApplicationTrace trace;
  trace.name = "t";
  trace.blocks = {simple_instance(k), simple_instance(k)};
  RiscOnlyRts rts(lib);
  const AppRunResult r = run_application(rts, trace);
  EXPECT_EQ(r.total_cycles, 800u);
  ASSERT_EQ(r.block_cycles.size(), 2u);
  EXPECT_EQ(r.block_cycles[0], 400u);
  EXPECT_EQ(r.rts_name, "RISC-only");
  EXPECT_DOUBLE_EQ(r.impl_fraction(ImplKind::kRisc), 1.0);
}

TEST(ProfileApplication, AveragesPerBlock) {
  const IseLibrary lib = one_kernel_library();
  const KernelId k = lib.find_kernel("K");
  FunctionalBlockInstance small = simple_instance(k);
  FunctionalBlockInstance big = simple_instance(k);
  big.events.push_back({k, 10});  // 4 executions
  ApplicationTrace trace;
  trace.blocks = {small, big};
  const std::vector<BlockProfile> profile = profile_application(trace, lib);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0].invocations, 2.0);
  ASSERT_EQ(profile[0].average.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0].average.entries[0].expected_executions, 3.5);
}

TEST(Metrics, FabricSweepOrderAndLabels) {
  const auto sweep = fabric_sweep(1, 2);
  ASSERT_EQ(sweep.size(), 6u);
  EXPECT_EQ(sweep[0].label(), "00");
  EXPECT_EQ(sweep[1].label(), "01");
  EXPECT_EQ(sweep[5].label(), "12");
  EXPECT_TRUE(sweep[0].risc_only());
  EXPECT_TRUE(sweep[1].cg_only());
  EXPECT_TRUE(sweep[3].fg_only());
  EXPECT_TRUE(sweep[4].multi_grained());
}

TEST(Metrics, SpeedupAndPercentDifference) {
  EXPECT_DOUBLE_EQ(speedup(200, 100), 2.0);
  EXPECT_DOUBLE_EQ(speedup(200, 0), 0.0);
  EXPECT_DOUBLE_EQ(percent_difference(100.0, 111.0), 11.0);
  EXPECT_DOUBLE_EQ(percent_difference(0.0, 5.0), 0.0);
}

TEST(DeriveTrigger, ThrowsOnUnknownKernel) {
  FunctionalBlockInstance inst;
  inst.events = {{KernelId{99}, 0}};
  EXPECT_THROW(derive_trigger(inst, {10, 20}), std::invalid_argument);
}

}  // namespace
}  // namespace mrts
