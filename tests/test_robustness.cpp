// Failure injection: the run-time system must stay correct (and degrade
// gracefully) under programmer errors and pathological forecasts — wildly
// wrong trigger values, kernels that were never forecast, empty triggers,
// kernels without ISEs, and executions before any trigger at all.

#include <gtest/gtest.h>

#include <cmath>

#include "isa/ise_builder.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

IseLibrary two_kernel_library() {
  IseLibrary lib;
  for (const char* name : {"A", "B"}) {
    IseBuildSpec spec;
    spec.kernel_name = name;
    spec.sw_latency = 600;
    spec.control_fraction = 0.4;
    spec.fg_data_path_names = {std::string(name) + "_ctrl_fg",
                               std::string(name) + "_dp_fg"};
    spec.cg_data_path_names = {std::string(name) + "_mac_cg"};
    spec.fg_control_dps = 1;
    spec.cg_data_dps = 1;
    build_kernel_ises(lib, spec);
  }
  return lib;
}

TEST(Robustness, ExecutionBeforeAnyTriggerRunsInRiscMode) {
  const IseLibrary lib = two_kernel_library();
  MRts rts(lib, 2, 2);
  const ExecOutcome out = rts.execute_kernel(lib.find_kernel("A"), 100);
  // No selection exists; with a CG fabric free the ECU may still bridge via
  // monoCG once loaded, but the very first execution is plain RISC.
  EXPECT_EQ(out.impl, ImplKind::kRisc);
  EXPECT_EQ(out.latency, 600u);
}

TEST(Robustness, EmptyTriggerSelectsNothingAndKeepsRunning) {
  const IseLibrary lib = two_kernel_library();
  MRts rts(lib, 2, 2);
  TriggerInstruction empty;
  empty.functional_block = FunctionalBlockId{0};
  const SelectionOutcome out = rts.on_trigger(empty, 0);
  EXPECT_TRUE(out.selection.selected.empty());
  const ExecOutcome exec = rts.execute_kernel(lib.find_kernel("A"), 50);
  EXPECT_GT(exec.latency, 0u);
}

TEST(Robustness, UnforecastKernelStillGetsAccelerationOpportunities) {
  const IseLibrary lib = two_kernel_library();
  MRts rts(lib, 2, 2);
  // Only kernel A is forecast; B shows up anyway (programmer forgot it).
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("A"), 5000.0, 400, 100});
  rts.on_trigger(ti, 0);
  // B is never selected, but after A's selection is loaded B can still be
  // executed (RISC or opportunistically mono/covered) without crashing.
  const ExecOutcome early = rts.execute_kernel(lib.find_kernel("B"), 100);
  EXPECT_GT(early.latency, 0u);
  const ExecOutcome late =
      rts.execute_kernel(lib.find_kernel("B"), 5'000'000);
  EXPECT_LE(late.latency, lib.kernel(lib.find_kernel("B")).sw_latency);
}

TEST(Robustness, ZeroForecastIsCorrectedByTheMpu) {
  const IseLibrary lib = two_kernel_library();
  MRts rts(lib, 2, 2);
  const KernelId a = lib.find_kernel("A");

  TriggerInstruction broken;
  broken.functional_block = FunctionalBlockId{0};
  broken.entries.push_back({a, 0.0, 0, 0});  // "this kernel never runs"
  const SelectionOutcome first = rts.on_trigger(broken, 0);
  EXPECT_TRUE(first.selection.selected.empty())
      << "zero expected executions cannot justify any reconfiguration";

  // Reality: thousands of executions. Feed two observations.
  BlockObservation obs;
  obs.functional_block = FunctionalBlockId{0};
  obs.kernels.push_back({a, 8000.0, 400, 100});
  rts.on_block_end(obs, 1'000'000);
  rts.on_block_end(obs, 2'000'000);

  const SelectionOutcome corrected = rts.on_trigger(broken, 3'000'000);
  EXPECT_FALSE(corrected.selection.selected.empty())
      << "the MPU must override the broken programmed forecast";
}

TEST(Robustness, AbsurdlyLargeForecastDoesNotOverflow) {
  const IseLibrary lib = two_kernel_library();
  MRts rts(lib, 2, 2);
  TriggerInstruction huge;
  huge.functional_block = FunctionalBlockId{0};
  huge.entries.push_back({lib.find_kernel("A"), 1e15, kNeverCycles / 2,
                          kNeverCycles / 4});
  const SelectionOutcome out = rts.on_trigger(huge, 0);
  for (const auto& sel : out.selection.selected) {
    EXPECT_TRUE(std::isfinite(sel.profit));
    EXPECT_GE(sel.profit, 0.0);
  }
  EXPECT_GT(rts.execute_kernel(lib.find_kernel("A"), 10).latency, 0u);
}

TEST(Robustness, KernelWithoutCandidateIsesIsLegal) {
  IseLibrary lib = two_kernel_library();
  const KernelId plain = lib.add_kernel("PLAIN", 300);  // no ISEs at all
  MRts rts(lib, 2, 2);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({plain, 1000.0, 100, 50});
  const SelectionOutcome out = rts.on_trigger(ti, 0);
  EXPECT_TRUE(out.selection.selected.empty());
  EXPECT_EQ(rts.execute_kernel(plain, 50).latency, 300u);
}

TEST(Robustness, UnknownKernelIdThrowsCleanly) {
  const IseLibrary lib = two_kernel_library();
  MRts rts(lib, 2, 2);
  EXPECT_THROW(rts.execute_kernel(KernelId{99}, 0), std::out_of_range);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({KernelId{99}, 10.0, 0, 0});
  EXPECT_THROW(rts.on_trigger(ti, 0), std::out_of_range);
}

TEST(Robustness, StaleForecastsAcrossBlocksAreIndependent) {
  // A forecast learned for block 0 must not leak into block 1's selections.
  const IseLibrary lib = two_kernel_library();
  MRts rts(lib, 2, 2);
  const KernelId a = lib.find_kernel("A");

  BlockObservation obs0;
  obs0.functional_block = FunctionalBlockId{0};
  obs0.kernels.push_back({a, 100'000.0, 400, 100});
  rts.on_block_end(obs0, 1'000'000);

  TriggerInstruction block1;
  block1.functional_block = FunctionalBlockId{1};
  block1.entries.push_back({a, 5.0, 0, 0});  // honest tiny forecast
  const SelectionOutcome out = rts.on_trigger(block1, 2'000'000);
  // Block 1 never observed anything; the tiny programmed value stands, and 5
  // executions cannot amortize an FG load.
  for (const auto& sel : out.selection.selected) {
    EXPECT_EQ(lib.ise(sel.ise).fg_units, 0u);
  }
}

}  // namespace
}  // namespace mrts
