// Randomized round-trip tests for both assemblers: generated programs must
// survive disassemble -> reassemble with identical code and identical
// execution behaviour (registers, memory, cycle counts).

#include <gtest/gtest.h>

#include "cgsim/cg_assembler.h"
#include "cgsim/cg_executor.h"
#include "riscsim/assembler.h"
#include "riscsim/cpu.h"
#include "util/rng.h"

namespace mrts {
namespace {

// --- riscsim ---------------------------------------------------------------

/// Generates a random but well-formed program: a prelude pins r1 to a safe
/// memory base, the body mixes ALU/memory ops and forward branches, and the
/// last instruction is halt, so every path terminates.
riscsim::Program random_risc_program(Rng& rng, std::size_t body_size) {
  using riscsim::Instr;
  using riscsim::Op;
  riscsim::Program p;
  auto reg = [&rng] { return static_cast<std::uint8_t>(rng.uniform_int(2, 12)); };

  Instr base;
  base.op = Op::kMovi;
  base.rd = 1;
  base.imm = 1024;
  p.code.push_back(base);

  static constexpr Op kAluOps[] = {Op::kAdd,  Op::kSub,  Op::kAnd, Op::kOr,
                                   Op::kXor,  Op::kMul,  Op::kMin, Op::kMax,
                                   Op::kCmpLt, Op::kCmpEq};
  static constexpr Op kImmOps[] = {Op::kAddi, Op::kSubi, Op::kAndi,
                                   Op::kOri,  Op::kSlli, Op::kSrli};

  const std::size_t total = 1 + body_size + 1;  // prelude + body + halt
  for (std::size_t i = 1; i <= body_size; ++i) {
    Instr in;
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 4) {
      in.op = kAluOps[rng.next_below(std::size(kAluOps))];
      in.rd = reg();
      in.rs1 = reg();
      in.rs2 = reg();
    } else if (kind < 7) {
      in.op = kImmOps[rng.next_below(std::size(kImmOps))];
      in.rd = reg();
      in.rs1 = reg();
      in.imm = static_cast<std::int32_t>(rng.uniform_int(0, 31));
    } else if (kind == 7) {
      in.op = rng.bernoulli(0.5) ? Op::kLdw : Op::kStw;
      in.rd = reg();
      in.rs1 = 1;  // safe base
      in.rs2 = reg();
      in.imm = static_cast<std::int32_t>(rng.uniform_int(0, 63)) * 4;
    } else if (kind == 8) {
      in.op = Op::kMovi;
      in.rd = reg();
      in.imm = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
    } else {
      // Forward branch: target strictly after this instruction.
      static constexpr Op kBranches[] = {Op::kBeq, Op::kBne, Op::kBlt,
                                         Op::kBge};
      in.op = kBranches[rng.next_below(std::size(kBranches))];
      in.rs1 = reg();
      in.rs2 = reg();
      in.target = static_cast<std::uint32_t>(
          rng.uniform_int(static_cast<std::int64_t>(i) + 1,
                          static_cast<std::int64_t>(total) - 1));
    }
    p.code.push_back(in);
  }
  Instr halt;
  halt.op = Op::kHalt;
  p.code.push_back(halt);
  p.lines.assign(p.code.size(), 0);
  return p;
}

TEST(RiscAssemblerFuzz, DisassembleReassembleRoundTrip) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 50; ++trial) {
    const riscsim::Program original =
        random_risc_program(rng, 5 + rng.next_below(40));
    const riscsim::Program rebuilt =
        riscsim::assemble(riscsim::disassemble(original));
    ASSERT_EQ(rebuilt.code.size(), original.code.size()) << trial;

    riscsim::Cpu cpu_a;
    riscsim::Cpu cpu_b;
    const auto run_a = cpu_a.run(original, 100'000);
    const auto run_b = cpu_b.run(rebuilt, 100'000);
    EXPECT_EQ(run_a.cycles, run_b.cycles) << trial;
    EXPECT_EQ(run_a.instructions, run_b.instructions) << trial;
    EXPECT_EQ(run_a.halted, run_b.halted) << trial;
    for (unsigned r = 0; r < riscsim::kNumRegisters; ++r) {
      ASSERT_EQ(cpu_a.reg(r), cpu_b.reg(r)) << "trial " << trial << " r" << r;
    }
  }
}

// --- cgsim -------------------------------------------------------------------

/// Structured random context program: flat sections and (possibly nested,
/// depth <= 2) zero-overhead loops, ending with halt; fits the 32-entry
/// context memory.
cgsim::CgContextProgram random_cg_program(Rng& rng) {
  using cgsim::CgInstr;
  using cgsim::CgOp;
  cgsim::CgContextProgram p;
  p.name = "fuzz";
  auto reg = [&rng] { return static_cast<std::uint8_t>(rng.uniform_int(2, 20)); };

  auto emit_simple = [&](std::size_t count) {
    static constexpr CgOp kOps[] = {CgOp::kAdd, CgOp::kSub, CgOp::kAnd,
                                    CgOp::kXor, CgOp::kMul, CgOp::kMac,
                                    CgOp::kMin, CgOp::kMax};
    for (std::size_t i = 0; i < count; ++i) {
      CgInstr in;
      if (rng.bernoulli(0.2)) {
        // Only the fields the textual form carries may be set (the
        // disassembler cannot resurrect unused ones).
        if (rng.bernoulli(0.5)) {
          in.op = CgOp::kLd;
          in.rd = reg();
        } else {
          in.op = CgOp::kSt;
          in.rs2 = reg();
        }
        in.rs1 = 1;
        in.imm = static_cast<std::int32_t>(rng.uniform_int(0, 31)) * 4;
      } else if (rng.bernoulli(0.2)) {
        in.op = CgOp::kMovi;
        in.rd = reg();
        in.imm = static_cast<std::int32_t>(rng.uniform_int(-50, 50));
      } else {
        in.op = kOps[rng.next_below(std::size(kOps))];
        in.rd = reg();
        in.rs1 = reg();
        in.rs2 = reg();
      }
      p.code.push_back(in);
    }
  };

  // Base register for memory ops.
  CgInstr base;
  base.op = CgOp::kMovi;
  base.rd = 1;
  base.imm = 256;
  p.code.push_back(base);

  emit_simple(1 + rng.next_below(3));
  // One loop, optionally with a nested inner loop.
  {
    CgInstr loop;
    loop.op = CgOp::kLoop;
    loop.imm = static_cast<std::int32_t>(rng.uniform_int(0, 5));
    const std::size_t loop_at = p.code.size();
    p.code.push_back(loop);
    emit_simple(1 + rng.next_below(3));
    if (rng.bernoulli(0.5)) {
      CgInstr inner;
      inner.op = CgOp::kLoop;
      inner.imm = static_cast<std::int32_t>(rng.uniform_int(1, 3));
      const std::size_t inner_at = p.code.size();
      p.code.push_back(inner);
      emit_simple(1 + rng.next_below(2));
      p.code[inner_at].aux =
          static_cast<std::uint16_t>(p.code.size() - inner_at - 1);
    }
    emit_simple(1 + rng.next_below(2));
    p.code[loop_at].aux =
        static_cast<std::uint16_t>(p.code.size() - loop_at - 1);
  }
  emit_simple(1 + rng.next_below(2));
  CgInstr halt;
  halt.op = CgOp::kHalt;
  p.code.push_back(halt);
  p.validate();
  return p;
}

TEST(CgAssemblerFuzz, DisassembleReassembleRoundTrip) {
  Rng rng(0xCF02);
  for (int trial = 0; trial < 50; ++trial) {
    const cgsim::CgContextProgram original = random_cg_program(rng);
    const cgsim::CgContextProgram rebuilt =
        cgsim::cg_assemble("fuzz", cgsim::cg_disassemble(original));
    ASSERT_EQ(rebuilt.code.size(), original.code.size()) << trial;
    for (std::size_t i = 0; i < original.code.size(); ++i) {
      ASSERT_EQ(rebuilt.code[i], original.code[i]) << "trial " << trial
                                                   << " instr " << i;
    }
    cgsim::CgExecutor a;
    cgsim::CgExecutor b;
    const auto run_a = a.run(original, 100'000);
    const auto run_b = b.run(rebuilt, 100'000);
    EXPECT_EQ(run_a.cycles, run_b.cycles) << trial;
    EXPECT_EQ(run_a.instructions, run_b.instructions) << trial;
  }
}

TEST(CgEncodingFuzz, EncodeDecodeRoundTripsEveryInstruction) {
  Rng rng(0xE2C);
  for (int trial = 0; trial < 30; ++trial) {
    const cgsim::CgContextProgram p = random_cg_program(rng);
    for (const auto& in : p.code) {
      EXPECT_EQ(cgsim::CgInstr::decode(in.encode()), in);
    }
  }
}

}  // namespace
}  // namespace mrts
