// Parameterized robustness sweep: the paper's qualitative claims must hold
// across random seeds and fabric combinations, not just for the default
// workload. Uses a reduced frame count to stay fast.

#include <gtest/gtest.h>

#include "baselines/morpheus4s_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

struct SweepParam {
  std::uint64_t seed;
};

void PrintTo(const SweepParam& p, std::ostream* os) { *os << "seed" << p.seed; }

class ShapeSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static H264Application build(std::uint64_t seed) {
    H264AppParams params;
    params.frames = 4;
    params.macroblocks = 396;
    params.seed = seed;
    return build_h264_application(params);
  }
};

TEST_P(ShapeSweep, MrtsDominatesAcrossSeeds) {
  const H264Application app = build(GetParam().seed);
  const auto profile = profile_application(app.trace, app.library);
  RiscOnlyRts risc(app.library);
  const Cycles risc_cycles = run_application(risc, app.trace).total_cycles;

  for (const auto& combo :
       {FabricCombination{1, 1}, FabricCombination{2, 2}}) {
    MRts mrts_rts(app.library, combo.cg, combo.prcs);
    const Cycles mrts_cycles =
        run_application(mrts_rts, app.trace).total_cycles;
    RisppRts rispp(app.library, combo.cg, combo.prcs);
    const Cycles rispp_cycles =
        run_application(rispp, app.trace).total_cycles;
    Morpheus4sRts morpheus(app.library, combo.cg, combo.prcs, profile);
    const Cycles morpheus_cycles =
        run_application(morpheus, app.trace).total_cycles;

    // Core ordering claims of Fig. 8, for every seed.
    EXPECT_LT(mrts_cycles, risc_cycles) << combo.label();
    EXPECT_LE(mrts_cycles, rispp_cycles + rispp_cycles / 100)
        << combo.label();
    EXPECT_LT(mrts_cycles, morpheus_cycles) << combo.label();
  }
}

TEST_P(ShapeSweep, MultiGrainedDominanceAcrossSeeds) {
  const H264Application app = build(GetParam().seed);
  RiscOnlyRts risc(app.library);
  const Cycles risc_cycles = run_application(risc, app.trace).total_cycles;

  auto run = [&app](unsigned cg, unsigned prcs) {
    MRts rts(app.library, cg, prcs);
    return run_application(rts, app.trace).total_cycles;
  };
  const Cycles mg_small = run(1, 1);
  const Cycles fg_only = run(0, 3);
  const Cycles cg_only = run(3, 0);

  // Fig. 10's headline holds for every seed.
  EXPECT_LT(mg_small, fg_only);
  EXPECT_LT(mg_small, cg_only);
  EXPECT_GT(speedup(risc_cycles, mg_small), 1.5);
}

TEST_P(ShapeSweep, WorkloadVariationIsPresent) {
  const H264Application app = build(GetParam().seed);
  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  for (unsigned f = 0; f < 4; ++f) {
    const std::size_t e = app.lf_filter_executions(f);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GT(hi, lo) << "frames must differ (Fig. 2 premise)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSweep,
                         ::testing::Values(SweepParam{0xC0FFEE},
                                           SweepParam{1234567},
                                           SweepParam{42},
                                           SweepParam{987654321}));

}  // namespace
}  // namespace mrts
