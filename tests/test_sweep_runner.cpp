// Tests for the concurrency substrate of the figure benches: the fixed-size
// thread pool (util/thread_pool.h), the deterministic parallel sweep runner
// (sim/sweep_runner.h) and the FabricCombination label fix the sweeps rely
// on. The determinism test mirrors a fig-8-style sweep and asserts the
// parallel runs are byte-identical to --jobs 1.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/rispp_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "sim/sweep_runner.h"
#include "util/csv.h"
#include "util/thread_pool.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsFutureResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, DestructorDrainsQueueAndJoins) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&done]() { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([]() { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

// --- SweepRunner -----------------------------------------------------------

TEST(SweepRunner, ResolvesZeroJobsToHardwareConcurrency) {
  EXPECT_EQ(SweepRunner(0).jobs(), ThreadPool::default_jobs());
  EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, RunIndexedCoversEveryIndexExactlyOnce) {
  for (unsigned jobs : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(57);
    SweepRunner runner(jobs);
    runner.run_indexed(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, MapPreservesSubmissionOrder) {
  std::vector<int> points(64);
  std::iota(points.begin(), points.end(), 0);
  const std::vector<int> serial =
      SweepRunner(1).map(points, [](const int& p) { return p * 3 + 1; });
  for (unsigned jobs : {2u, 4u, 8u}) {
    const std::vector<int> parallel =
        SweepRunner(jobs).map(points, [](const int& p) { return p * 3 + 1; });
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, LowestIndexExceptionWinsRegardlessOfJobs) {
  for (unsigned jobs : {1u, 2u, 8u}) {
    SweepRunner runner(jobs);
    try {
      runner.run_indexed(16, [](std::size_t i) {
        if (i == 3 || i == 11) {
          throw std::runtime_error("point " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "point 3") << "jobs=" << jobs;
    }
  }
}

TEST(SweepRunner, EmptySweepIsANoop) {
  SweepRunner runner(4);
  bool called = false;
  runner.run_indexed(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// --- FabricCombination::label (regression for the {11,1}/{1,11} clash) -----

TEST(FabricCombinationLabel, SingleDigitKeepsPaperForm) {
  EXPECT_EQ((FabricCombination{0, 0}.label()), "00");
  EXPECT_EQ((FabricCombination{2, 3}.label()), "23");
  EXPECT_EQ((FabricCombination{9, 9}.label()), "99");
}

TEST(FabricCombinationLabel, MultiDigitIsUnambiguous) {
  EXPECT_EQ((FabricCombination{11, 1}.label()), "11x1");
  EXPECT_EQ((FabricCombination{1, 11}.label()), "1x11");
  EXPECT_NE((FabricCombination{11, 1}.label()),
            (FabricCombination{1, 11}.label()));
  EXPECT_EQ((FabricCombination{10, 0}.label()), "10x0");
}

// --- Determinism of a fig-8-style simulation sweep -------------------------

/// Renders a mini fig-8-style sweep (mRTS + RISPP-like cycles per fabric
/// combination) to a CSV string, fanning the points out over \p jobs
/// workers. Every point builds its own simulator instances; the application
/// (library + trace) is shared read-only.
std::string render_sweep_csv(const H264Application& app, unsigned jobs) {
  const std::vector<FabricCombination> points = fabric_sweep(2, 1);
  struct Row {
    Cycles mrts = 0;
    Cycles rispp = 0;
  };
  const SweepRunner runner(jobs);
  const std::vector<Row> rows =
      runner.map(points, [&app](const FabricCombination& c) {
        Row row;
        MRts mrts_rts(app.library, c.cg, c.prcs);
        row.mrts = run_application(mrts_rts, app.trace).total_cycles;
        RisppRts rispp_rts(app.library, c.cg, c.prcs);
        row.rispp = run_application(rispp_rts, app.trace).total_cycles;
        return row;
      });

  CsvWriter csv;
  csv.write_header({"label", "mrts_cycles", "rispp_cycles"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    csv.write_values(points[i].label(), rows[i].mrts, rows[i].rispp);
  }
  return csv.str();
}

TEST(SweepDeterminism, ParallelSweepMatchesSerialByteForByte) {
  H264AppParams params;
  params.frames = 2;  // keep the test fast; same setting as the bench smokes
  const H264Application app = build_h264_application(params);

  const std::string serial = render_sweep_csv(app, 1);
  ASSERT_FALSE(serial.empty());
  for (unsigned jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(render_sweep_csv(app, jobs), serial) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace mrts
