// Tests for the CMP simulation layer (sim/cmp.h) and the unified Machine
// construction API (sim/machine.h): the one-core degenerate case must
// reproduce run_multi_tenant bit-exactly (results AND trace events), the
// interconnect/port charges must appear exactly where the topology says,
// and machine-built runtime systems must be indistinguishable from the
// hand-wired constructions they replace.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/fabric_manager.h"
#include "arch/fault_model.h"
#include "isa/ise_builder.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/arbiter.h"
#include "sim/cmp.h"
#include "sim/machine.h"
#include "sim/multi_app.h"
#include "util/trace.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

/// A combined library with one synthetic kernel per task plus one
/// application trace per task, all sharing one data-path table (the
/// shared-fabric requirement). Same generator as the fig12/fig15 harnesses.
struct CmpApp {
  IseLibrary library;
  std::vector<KernelId> kernels;
  std::vector<ApplicationTrace> traces;
};

CmpApp make_apps(unsigned tasks, unsigned blocks) {
  CmpApp app;
  for (unsigned i = 0; i < tasks; ++i) {
    const std::string name = "T" + std::to_string(i);
    IseBuildSpec spec;
    spec.kernel_name = name;
    spec.sw_latency = 700;
    spec.control_fraction = 0.4;
    spec.fg_data_path_names = {name + "_ctrl_fg", name + "_dp_fg"};
    spec.cg_data_path_names = {name + "_mac_cg"};
    spec.fg_control_dps = 1;
    spec.cg_data_dps = 1;
    app.kernels.push_back(build_kernel_ises(app.library, spec));
  }
  app.traces.resize(tasks);
  for (unsigned i = 0; i < tasks; ++i) {
    Rng rng(1000 + i);
    for (unsigned b = 0; b < blocks; ++b) {
      FunctionalBlockInstance inst = make_block_instance(
          FunctionalBlockId{0}, /*macroblocks=*/400,
          {{app.kernels[i], 8.0, 25, 0.1}}, /*entry_gap=*/200,
          /*tail_gap=*/200, rng);
      stamp_programmed_trigger(inst, app.library);
      app.traces[i].blocks.push_back(std::move(inst));
    }
  }
  return app;
}

TenantPolicy weighted(unsigned weight, unsigned priority = 0) {
  TenantPolicy p;
  p.share = TenantShare::kWeighted;
  p.weight = weight;
  p.priority = priority;
  return p;
}

TenantPolicy reserved(unsigned prcs, unsigned cg, unsigned priority = 0) {
  TenantPolicy p;
  p.share = TenantShare::kReserved;
  p.reserved_prcs = prcs;
  p.reserved_cg = cg;
  p.priority = priority;
  return p;
}

bool is_cmp_marker(const TraceEvent& e) {
  return e.kind == TraceEventKind::kCoreSlice ||
         e.kind == TraceEventKind::kCoreTransfer;
}

std::vector<TraceEvent> without_cmp_markers(const std::vector<TraceEvent>& in) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : in) {
    if (!is_cmp_marker(e)) out.push_back(e);
  }
  return out;
}

void expect_events_identical(const std::vector<TraceEvent>& a,
                             const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].track, b[i].track) << "event " << i;
    EXPECT_EQ(a[i].at, b[i].at) << "event " << i;
    EXPECT_EQ(a[i].duration, b[i].duration) << "event " << i;
    EXPECT_EQ(a[i].arg0, b[i].arg0) << "event " << i;
    EXPECT_EQ(a[i].arg1, b[i].arg1) << "event " << i;
    EXPECT_EQ(a[i].v0, b[i].v0) << "event " << i;
    EXPECT_EQ(a[i].v1, b[i].v1) << "event " << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << "event " << i;
  }
}

void expect_results_identical(const MultiTenantResult& a,
                              const MultiTenantResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].run.name, b.tasks[i].run.name);
    EXPECT_EQ(a.tasks[i].run.active_cycles, b.tasks[i].run.active_cycles);
    EXPECT_EQ(a.tasks[i].run.finished_at, b.tasks[i].run.finished_at);
    EXPECT_EQ(a.tasks[i].run.block_cycles, b.tasks[i].run.block_cycles);
    EXPECT_EQ(a.tasks[i].run.impl_executions, b.tasks[i].run.impl_executions);
    EXPECT_EQ(a.tasks[i].tenant, b.tasks[i].tenant);
    EXPECT_EQ(a.tasks[i].admitted, b.tasks[i].admitted);
    EXPECT_EQ(a.tasks[i].admission_reason, b.tasks[i].admission_reason);
    EXPECT_EQ(a.tasks[i].admitted_at, b.tasks[i].admitted_at);
    EXPECT_EQ(a.tasks[i].deadline_met, b.tasks[i].deadline_met);
  }
}

/// Builds a 2-tenant arbitrated workload and its tasks against the given
/// fabric objects. \p recorder (optional) is attached to both tasks.
struct ArbitratedRig {
  CmpApp app;
  std::unique_ptr<FabricManager> fabric;
  std::unique_ptr<FabricArbiter> arbiter;
  std::vector<std::unique_ptr<MRts>> rts;
  std::vector<Task> tasks;
};

ArbitratedRig make_rig(unsigned tenants, unsigned blocks,
                       TraceRecorder* recorder) {
  ArbitratedRig rig;
  rig.app = make_apps(tenants, blocks);
  rig.fabric = std::make_unique<FabricManager>(
      1, 2, &rig.app.library.data_paths());
  rig.arbiter = std::make_unique<FabricArbiter>(*rig.fabric);
  for (unsigned i = 0; i < tenants; ++i) {
    const auto reg = rig.arbiter->register_tenant("T" + std::to_string(i),
                                                  weighted(1 + i));
    rig.rts.push_back(
        std::make_unique<MRts>(rig.app.library, rig.arbiter->binding(reg.id)));
    Task task;
    task.name = "T" + std::to_string(i);
    task.rts = rig.rts.back().get();
    task.trace = &rig.app.traces[i];
    task.tenant = reg.id;
    task.recorder = recorder;
    rig.tasks.push_back(std::move(task));
  }
  return rig;
}

// ---------------------------------------------------------------------------
// The degenerate-case contract.

TEST(Cmp, OneCoreReproducesRunMultiTenantBitExactly) {
  TraceRecorder ref_rec;
  ArbitratedRig ref = make_rig(2, 6, &ref_rec);
  const MultiTenantResult expected = run_multi_tenant(ref.tasks,
                                                      ref.arbiter.get());

  TraceRecorder cmp_rec;
  ArbitratedRig rig = make_rig(2, 6, &cmp_rec);
  std::vector<CmpCore> cores(1);
  cores[0].tasks = rig.tasks;
  CmpParams params;
  params.fabric = rig.fabric.get();
  const CmpResult actual =
      run_cmp(cores, Interconnect(), rig.arbiter.get(), params);

  ASSERT_EQ(actual.cores.size(), 1u);
  EXPECT_EQ(actual.total_cycles, expected.total_cycles);
  EXPECT_EQ(actual.cores[0].interconnect_cycles, 0u);
  EXPECT_EQ(actual.cores[0].port_wait_cycles, 0u);
  expect_results_identical(actual.cores[0].run, expected);

  // The trace streams agree event for event once the purely additive
  // core.slice markers are removed (no core.transfer may appear at all:
  // distance 1 means zero extra cycles).
  for (const TraceEvent& e : cmp_rec.events()) {
    EXPECT_NE(e.kind, TraceEventKind::kCoreTransfer);
  }
  expect_events_identical(without_cmp_markers(cmp_rec.events()),
                          ref_rec.events());
}

TEST(Cmp, OneCoreMarkersCoverTheTimeline) {
  TraceRecorder rec;
  ArbitratedRig rig = make_rig(2, 4, &rec);
  std::vector<CmpCore> cores(1);
  cores[0].tasks = rig.tasks;
  CmpParams params;
  params.fabric = rig.fabric.get();
  const CmpResult result =
      run_cmp(cores, Interconnect(), rig.arbiter.get(), params);

  unsigned slices = 0;
  std::uint64_t blocks = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.kind != TraceEventKind::kCoreSlice) continue;
    ++slices;
    blocks += e.arg1;
    EXPECT_EQ(e.track, kTrackCoreBase);
    EXPECT_EQ(e.arg0, 0u);
    EXPECT_EQ(e.v0, 0.0);  // no transfer cycles at distance 1
    EXPECT_EQ(e.v1, 0.0);  // no port contention with one core
  }
  EXPECT_GT(slices, 0u);
  std::uint64_t ran = 0;
  for (const MultiTenantTaskResult& t : result.cores[0].run.tasks) {
    ran += t.run.block_cycles.size();
  }
  EXPECT_EQ(blocks, ran);
}

// ---------------------------------------------------------------------------
// Interconnect charging.

TEST(Cmp, FlatTopologyChargesNoTransferCycles) {
  ArbitratedRig rig = make_rig(4, 3, nullptr);
  std::vector<CmpCore> cores(4);
  for (std::size_t c = 0; c < 4; ++c) cores[c].tasks = {rig.tasks[c]};
  CmpParams params;
  params.fabric = rig.fabric.get();
  const CmpResult result = run_cmp(
      cores, Interconnect(InterconnectParams::linear_chain(4, 0)),
      rig.arbiter.get(), params);
  for (const CmpCoreResult& core : result.cores) {
    EXPECT_EQ(core.interconnect_cycles, 0u);
  }
}

TEST(Cmp, ChainTopologyChargesPerBlockTransfers) {
  const unsigned kBlocks = 3;
  ArbitratedRig rig = make_rig(2, kBlocks, nullptr);
  std::vector<CmpCore> cores(2);
  cores[0].tasks = {rig.tasks[0]};
  cores[1].tasks = {rig.tasks[1]};
  const Interconnect icn(InterconnectParams::linear_chain(2, 1));
  CmpParams params;
  params.transfers_per_block = 3;
  params.fabric = rig.fabric.get();
  const CmpResult result = run_cmp(cores, icn, rig.arbiter.get(), params);

  // Core 0 sits at distance 1 (zero extra); core 1 at distance 2 pays
  // transfers_per_block * core_link_cycles * (distance - 1) per block.
  EXPECT_EQ(result.cores[0].interconnect_cycles, 0u);
  const Cycles per_block = 3 * icn.core_extra_cycles(1);
  EXPECT_GT(per_block, 0u);
  EXPECT_EQ(result.cores[1].interconnect_cycles, kBlocks * per_block);
  // The charge lands inside the core's own timeline.
  EXPECT_GE(result.cores[1].run.tasks[0].run.active_cycles,
            kBlocks * per_block);
}

TEST(Cmp, MultiCoreRunsAreDeterministic) {
  auto run_once = [] {
    ArbitratedRig rig = make_rig(4, 4, nullptr);
    std::vector<CmpCore> cores(4);
    for (std::size_t c = 0; c < 4; ++c) cores[c].tasks = {rig.tasks[c]};
    CmpParams params;
    params.fabric = rig.fabric.get();
    return run_cmp(cores, Interconnect(InterconnectParams::linear_chain(4, 1)),
                   rig.arbiter.get(), params);
  };
  const CmpResult a = run_once();
  const CmpResult b = run_once();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    EXPECT_EQ(a.cores[c].interconnect_cycles, b.cores[c].interconnect_cycles);
    EXPECT_EQ(a.cores[c].port_wait_cycles, b.cores[c].port_wait_cycles);
    EXPECT_EQ(a.cores[c].reconfig_slices, b.cores[c].reconfig_slices);
    expect_results_identical(a.cores[c].run, b.cores[c].run);
  }
}

// ---------------------------------------------------------------------------
// Cross-core arbitration semantics.

TEST(Cmp, ReservedPartitionIsolatedAcrossCores) {
  CmpApp app = make_apps(3, 4);
  FabricManager fabric(2, 4, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  const auto rt = arbiter.register_tenant("rt", reserved(1, 1, 2));
  const auto w1 = arbiter.register_tenant("w1", weighted(2));
  const auto w2 = arbiter.register_tenant("w2", weighted(2));
  ASSERT_TRUE(rt.admitted);
  MRts rts0(app.library, arbiter.binding(rt.id));
  MRts rts1(app.library, arbiter.binding(w1.id));
  MRts rts2(app.library, arbiter.binding(w2.id));

  std::vector<CmpCore> cores(3);
  const TenantId ids[3] = {rt.id, w1.id, w2.id};
  MRts* rts[3] = {&rts0, &rts1, &rts2};
  for (std::size_t c = 0; c < 3; ++c) {
    Task task;
    task.name = c == 0 ? "rt" : "w" + std::to_string(c);
    task.rts = rts[c];
    task.trace = &app.traces[c];
    task.tenant = ids[c];
    if (c == 0) task.priority = 2;
    cores[c].tasks.push_back(std::move(task));
  }
  CmpParams params;
  params.fabric = &fabric;
  const CmpResult result = run_cmp(cores, Interconnect(), &arbiter, params);

  // Every core completed its blocks, and the reserved tenant's hard
  // partition was never stolen by the weighted tenants on the other cores.
  for (const CmpCoreResult& core : result.cores) {
    EXPECT_EQ(core.run.tasks[0].run.block_cycles.size(), 4u);
  }
  EXPECT_EQ(arbiter.stats(rt.id).evictions_suffered, 0u);
  EXPECT_EQ(arbiter.stats(rt.id).quota_redirects, 0u);
}

TEST(Cmp, QuarantinedTenantIsBouncedItsCoreIdles) {
  CmpApp app = make_apps(2, 4);
  FabricManager fabric(1, 2, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  const auto rt = arbiter.register_tenant("rt", reserved(2, 0));
  const auto w = arbiter.register_tenant("w", weighted(1));
  ASSERT_TRUE(rt.admitted);

  // Rate-1.0 injector: the reserved tenant's own loads quarantine its
  // partition, revoking its admission (same setup as the arbiter tests).
  MRts doomed(app.library, arbiter.binding(rt.id));
  FaultModel model(FaultModelConfig::uniform(1.0, 7));
  RuntimeSystem& base = doomed;
  ASSERT_TRUE(base.attach_fault_model(&model));
  run_application(doomed, app.traces[0]);
  ASSERT_GT(model.stats().quarantined_prcs, 0u);
  ASSERT_FALSE(arbiter.admitted(rt.id));

  MRts healthy(app.library, arbiter.binding(w.id));
  std::vector<CmpCore> cores(2);
  Task dead;
  dead.name = "rt";
  dead.rts = &doomed;
  dead.trace = &app.traces[0];
  dead.tenant = rt.id;
  cores[0].tasks.push_back(std::move(dead));
  Task alive;
  alive.name = "w";
  alive.rts = &healthy;
  alive.trace = &app.traces[1];
  alive.tenant = w.id;
  cores[1].tasks.push_back(std::move(alive));

  CmpParams params;
  params.fabric = &fabric;
  const CmpResult result = run_cmp(cores, Interconnect(), &arbiter, params);

  // Core 0's only task is bounced up front: zero blocks, reason carried;
  // core 1 degrades gracefully and still finishes all its blocks.
  EXPECT_FALSE(result.cores[0].run.tasks[0].admitted);
  EXPECT_FALSE(result.cores[0].run.tasks[0].admission_reason.empty());
  EXPECT_TRUE(result.cores[0].run.tasks[0].run.block_cycles.empty());
  EXPECT_TRUE(result.cores[1].run.tasks[0].admitted);
  EXPECT_EQ(result.cores[1].run.tasks[0].run.block_cycles.size(), 4u);
  EXPECT_EQ(result.total_cycles, result.cores[1].run.total_cycles);
}

TEST(Cmp, ValidationUsesItsOwnPrefix) {
  std::vector<CmpCore> cores(1);
  Task task;  // no rts/trace: invalid
  task.name = "broken";
  cores[0].tasks.push_back(std::move(task));
  try {
    run_cmp(cores, Interconnect());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("run_cmp: ", 0), 0u) << e.what();
  }
}

TEST(Cmp, EmptyCoreListYieldsEmptyResult) {
  const CmpResult result = run_cmp({}, Interconnect());
  EXPECT_EQ(result.total_cycles, 0u);
  EXPECT_TRUE(result.cores.empty());
}

// ---------------------------------------------------------------------------
// The Machine construction API.

TEST(Machine, PrivateTenancyMatchesHandWiredMRts) {
  CmpApp app = make_apps(1, 4);
  MRts hand(app.library, /*num_cg_fabrics=*/2, /*num_prcs=*/4);
  const AppRunResult expected = run_application(hand, app.traces[0]);

  MachineConfig mc;
  mc.prcs = 4;
  mc.cg_fabrics = 2;
  Machine machine(app.library, mc);
  RuntimeSystem& rts = machine.add_rts();
  const AppRunResult actual = run_application(rts, app.traces[0]);

  EXPECT_EQ(actual.total_cycles, expected.total_cycles);
  EXPECT_TRUE(machine.mrts(0).owns_fabric());
  EXPECT_EQ(machine.num_rts(), 1u);
}

TEST(Machine, ArbitratedTenancyMatchesHandWiredStack) {
  TraceRecorder ref_rec;
  ArbitratedRig ref = make_rig(2, 5, &ref_rec);
  const MultiTenantResult expected = run_multi_tenant(ref.tasks,
                                                      ref.arbiter.get());

  CmpApp app = make_apps(2, 5);
  MachineConfig mc;
  mc.prcs = 2;
  mc.cg_fabrics = 1;
  mc.tenancy = Tenancy::kArbitrated;
  Machine machine(app.library, mc);
  TraceRecorder rec;
  std::vector<Task> tasks;
  for (unsigned i = 0; i < 2; ++i) {
    const auto reg = machine.register_tenant("T" + std::to_string(i),
                                             weighted(1 + i));
    Task task;
    task.name = "T" + std::to_string(i);
    task.rts = &machine.add_rts(reg.id);
    task.trace = &app.traces[i];
    task.tenant = reg.id;
    task.recorder = &rec;
    tasks.push_back(std::move(task));
  }
  const MultiTenantResult actual = run_multi_tenant(tasks, &machine.arbiter());

  expect_results_identical(actual, expected);
  expect_events_identical(rec.events(), ref_rec.events());
}

TEST(Machine, SharedTenancyBindsAllRtsToOneFabric) {
  CmpApp app = make_apps(2, 2);
  MachineConfig mc;
  mc.tenancy = Tenancy::kShared;
  Machine machine(app.library, mc);
  machine.add_rts();
  machine.add_rts();
  EXPECT_FALSE(machine.mrts(0).owns_fabric());
  EXPECT_FALSE(machine.mrts(1).owns_fabric());
  EXPECT_EQ(&machine.mrts(0).fabric(), &machine.fabric());
  EXPECT_EQ(&machine.mrts(1).fabric(), &machine.fabric());
}

TEST(Machine, ContractViolationsThrow) {
  CmpApp app = make_apps(1, 1);

  MachineConfig zero_cores;
  zero_cores.cores = 0;
  EXPECT_THROW(Machine(app.library, zero_cores), std::invalid_argument);

  MachineConfig bad_hops;
  bad_hops.interconnect.core_hop_distance = {0};
  EXPECT_THROW(Machine(app.library, bad_hops), std::invalid_argument);

  Machine priv(app.library, MachineConfig{});
  EXPECT_THROW(priv.fabric(), std::logic_error);
  EXPECT_THROW(priv.arbiter(), std::logic_error);
  EXPECT_THROW(priv.register_tenant("t", weighted(1)), std::logic_error);
  EXPECT_THROW(priv.add_rts(TenantId{1}), std::logic_error);

  MachineConfig arb;
  arb.tenancy = Tenancy::kArbitrated;
  Machine arbitrated(app.library, arb);
  // The tenant overloads require a registration: unknown / bounced tenants
  // surface as the admission bounce, not a crash.
  EXPECT_THROW(arbitrated.add_rts(TenantId{42}), std::invalid_argument);
  // The no-tenant overload is for private/shared machines only.
  EXPECT_THROW(arbitrated.add_rts(), std::logic_error);
}

TEST(Machine, MakeRtsIsCallerOwned) {
  CmpApp app = make_apps(1, 2);
  MachineConfig mc;
  mc.tenancy = Tenancy::kArbitrated;
  Machine machine(app.library, mc);
  const auto reg = machine.register_tenant("t", weighted(1));
  {
    std::unique_ptr<MRts> rts = machine.make_rts(reg.id, MRtsConfig{});
    ASSERT_NE(rts, nullptr);
    run_application(*rts, app.traces[0]);
  }
  // The machine kept no reference: churned instances die with their owner.
  EXPECT_EQ(machine.num_rts(), 0u);
  // And the tenant can get a fresh instance afterwards.
  std::unique_ptr<MRts> again = machine.make_rts(reg.id, MRtsConfig{});
  EXPECT_NE(again, nullptr);
}

TEST(Machine, ObservabilityFansOutInCreationOrder) {
  CmpApp app = make_apps(2, 2);
  MachineConfig mc;
  mc.tenancy = Tenancy::kShared;
  Machine machine(app.library, mc);
  machine.add_rts();
  machine.add_rts();
  TraceRecorder rec;
  CounterRegistry counters;
  machine.attach_observability(&rec, &counters);
  // First attachment claims the shared fabric's event stream (the same
  // first-wins contract as attaching by hand, pinned by the arbiter tests).
  run_application(machine.rts(0), app.traces[0]);
  bool saw_reconfig = false;
  for (const TraceEvent& e : rec.events()) {
    saw_reconfig |= e.kind == TraceEventKind::kReconfigStart;
  }
  EXPECT_TRUE(saw_reconfig);
}

}  // namespace
}  // namespace mrts
