// Additional coverage: multiset data-path installs, blocking-overhead cycle
// conservation with a real RTS, CSV file mode, the logging facility and the
// disassemblers on the shipped kernel programs.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "arch/fabric_manager.h"
#include "cgsim/cg_assembler.h"
#include "cgsim/cg_kernel_programs.h"
#include "isa/ise_builder.h"
#include "riscsim/assembler.h"
#include "riscsim/kernel_programs.h"
#include "rts/mrts.h"
#include "sim/fb_simulator.h"
#include "util/csv.h"
#include "util/logging.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

TEST(FabricManagerMultiset, RepeatedDataPathNeedsTwoInstances) {
  DataPathTable table;
  DataPathDesc fg;
  fg.name = "fg";
  fg.grain = Grain::kFine;
  const DataPathId fg_id = table.add(fg);

  FabricManager fm(0, 2, &table);
  // An ISE using the same data path twice occupies two PRCs and serializes
  // two bitstreams.
  const auto placements =
      fm.install({{IseId{0}, KernelId{0}, {fg_id, fg_id}}}, 0);
  ASSERT_EQ(placements[0].instance_ready.size(), 2u);
  EXPECT_GT(placements[0].instance_ready[1], placements[0].instance_ready[0]);
  EXPECT_EQ(fm.usage().reserved_prcs, 2u);
  EXPECT_EQ(fm.instance_ready_times(fg_id).size(), 2u);
  // Only one instance is available until the second completes.
  EXPECT_EQ(fm.available_instances(fg_id, placements[0].instance_ready[0]),
            1u);
  EXPECT_EQ(fm.available_instances(fg_id, placements[0].instance_ready[1]),
            2u);

  // A single-PRC machine cannot host it.
  FabricManager small(0, 1, &table);
  EXPECT_THROW(small.install({{IseId{0}, KernelId{0}, {fg_id, fg_id}}}, 0),
               std::invalid_argument);
}

TEST(RunBlock, BlockingOverheadIsPartOfTheTimeline) {
  IseLibrary lib;
  IseBuildSpec spec;
  spec.kernel_name = "K";
  spec.sw_latency = 400;
  spec.fg_data_path_names = {"k_fg"};
  spec.cg_data_path_names = {"k_cg"};
  const KernelId k = build_kernel_ises(lib, spec);

  Rng rng(3);
  FunctionalBlockInstance inst = make_block_instance(
      FunctionalBlockId{0}, 50, {{k, 4.0, 20, 0.0}}, 100, 100, rng);
  stamp_programmed_trigger(inst, lib);

  MRts rts(lib, 1, 1);
  const FbRunResult r = run_block(rts, inst, 0);
  EXPECT_GT(r.blocking_overhead, 0u);

  // Conservation: block time = overhead + gaps + execution latencies + tail.
  Cycles expected = r.blocking_overhead + inst.tail_gap;
  for (const auto& ev : inst.events) expected += ev.gap_before;
  for (std::size_t i = 0; i < kNumImplKinds; ++i) {
    expected += r.impl_cycles[i];
  }
  EXPECT_EQ(r.cycles, expected);
}

TEST(Csv, FileModeWritesToDisk) {
  const std::string path = ::testing::TempDir() + "/mrts_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_header({"a", "b"});
    csv.write_values(1, "x,y");
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Logging, ThresholdFiltersMessages) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  // Discarded without side effects (streaming into a dead line is legal).
  MRTS_INFO("test") << "hidden " << 42;
  set_log_level(LogLevel::kTrace);
  MRTS_TRACE("test") << "visible";
  set_log_level(old);
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Disassemblers, RoundTripAllShippedKernelPrograms) {
  for (const auto& name : riscsim::kernel_program_names()) {
    const auto& p = riscsim::kernel_program(name);
    const auto back = riscsim::assemble(riscsim::disassemble(p));
    ASSERT_EQ(back.code.size(), p.code.size()) << name;
  }
  for (const auto& name : cgsim::cg_kernel_program_names()) {
    const auto& p = cgsim::cg_kernel_program(name);
    const auto back = cgsim::cg_assemble(name, cgsim::cg_disassemble(p));
    ASSERT_EQ(back.code.size(), p.code.size()) << name;
    for (std::size_t i = 0; i < p.code.size(); ++i) {
      EXPECT_EQ(back.code[i], p.code[i]) << name << " instr " << i;
    }
  }
}

}  // namespace
}  // namespace mrts
