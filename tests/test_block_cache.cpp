// Differential tests for the decoded basic-block caches (riscsim/cpu.h,
// cgsim/cg_executor.h) and the batched frame-execution fast path they feed:
// seeded random programs — self-branching loops, forward branches, memory
// traffic, coprocessor calls — must produce bit-identical cycle counts,
// instruction counts, op profiles, register files, memory images and thrown
// exceptions with the cache on and off. The plain interpreter is the oracle
// (util/fastpath.h), including under fault-induced re-execution and across
// sweep worker counts.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/fault_model.h"
#include "cgsim/cg_executor.h"
#include "cgsim/cg_isa.h"
#include "riscsim/assembler.h"
#include "riscsim/cpu.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "sim/sweep_runner.h"
#include "util/csv.h"
#include "util/fastpath.h"
#include "util/rng.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

/// Scoped override of the process-wide fast-path toggle; restores the
/// previous setting on destruction so test order never leaks state.
class FastpathGuard {
 public:
  explicit FastpathGuard(bool enabled) : previous_(fastpath_enabled()) {
    set_fastpath_enabled(enabled);
  }
  ~FastpathGuard() { set_fastpath_enabled(previous_); }
  FastpathGuard(const FastpathGuard&) = delete;
  FastpathGuard& operator=(const FastpathGuard&) = delete;

 private:
  bool previous_;
};

// --- riscsim: interpreter vs block cache -----------------------------------

/// Everything observable about one CPU run: the result (or the exception it
/// ended in), the full register file and the low memory image.
struct RiscOutcome {
  riscsim::RunResult result{};
  bool threw = false;
  std::string error;
  std::array<std::uint32_t, riscsim::kNumRegisters> regs{};
  std::vector<std::uint32_t> mem;

  friend bool operator==(const RiscOutcome& a, const RiscOutcome& b) {
    return a.threw == b.threw && a.error == b.error &&
           a.result.cycles == b.result.cycles &&
           a.result.instructions == b.result.instructions &&
           a.result.halted == b.result.halted &&
           a.result.op_counts == b.result.op_counts && a.regs == b.regs &&
           a.mem == b.mem;
  }
};

RiscOutcome run_risc(const riscsim::Program& program, bool fast,
                     const std::function<void(riscsim::Cpu&)>& setup = {},
                     riscsim::Coprocessor* cop = nullptr,
                     std::uint64_t max_steps = 1'000'000) {
  FastpathGuard guard(fast);
  riscsim::Cpu cpu;
  if (cop != nullptr) cpu.attach_coprocessor(cop);
  if (setup) setup(cpu);
  RiscOutcome out;
  try {
    out.result = cpu.run(program, max_steps);
  } catch (const std::exception& e) {
    out.threw = true;
    out.error = e.what();
  }
  for (unsigned r = 0; r < riscsim::kNumRegisters; ++r) {
    out.regs[r] = cpu.reg(r);
  }
  for (std::size_t addr = 0; addr < 512; addr += 4) {
    out.mem.push_back(cpu.memory().read32(addr));
  }
  return out;
}

/// Asserts interpreter and block-cache runs are observably identical.
void expect_risc_identical(const riscsim::Program& program,
                           const std::function<void(riscsim::Cpu&)>& setup = {},
                           std::uint64_t max_steps = 1'000'000) {
  const RiscOutcome slow = run_risc(program, false, setup, nullptr, max_steps);
  const RiscOutcome fast = run_risc(program, true, setup, nullptr, max_steps);
  EXPECT_EQ(slow.threw, fast.threw);
  EXPECT_EQ(slow.error, fast.error);
  EXPECT_EQ(slow.result.cycles, fast.result.cycles);
  EXPECT_EQ(slow.result.instructions, fast.result.instructions);
  EXPECT_EQ(slow.result.halted, fast.result.halted);
  EXPECT_EQ(slow.result.op_counts, fast.result.op_counts);
  EXPECT_EQ(slow.regs, fast.regs);
  EXPECT_EQ(slow.mem, fast.mem);
}

/// Generates a random but well-formed program: a counted self-branching
/// loop whose body mixes ALU, memory and wait instructions plus
/// data-dependent forward branches, followed by a straight-line tail.
/// r1 is the loop counter, r4 the (never-clobbered) memory base.
std::string random_risc_program(Rng& rng) {
  static const char* const kRr[] = {"add", "sub",   "and",   "or",  "xor",
                                    "sll", "srl",   "sra",   "mul", "cmplt",
                                    "min", "max"};
  static const char* const kRi[] = {"addi", "subi", "andi",
                                    "ori",  "slli", "srli"};
  static const char* const kBr[] = {"beq", "bne", "blt", "bge"};
  const int kRd[] = {2, 3, 5, 6, 7, 8};
  auto rd = [&] { return kRd[rng.next_below(6)]; };
  auto rs = [&] { return rng.next_below(10); };  // r0..r9 as sources

  std::string s;
  s += "movi r1, " + std::to_string(rng.uniform_int(1, 6)) + "\n";
  s += "movi r2, " + std::to_string(rng.uniform_int(-100, 100)) + "\n";
  s += "movi r3, " + std::to_string(rng.uniform_int(0, 255)) + "\n";
  s += "movi r4, 128\n";  // memory base; loop body never writes r4
  s += "loop:\n";
  unsigned fwd = 0;
  const int body = static_cast<int>(rng.uniform_int(4, 10));
  for (int i = 0; i < body; ++i) {
    switch (rng.next_below(6)) {
      case 0:
        s += std::string(kRr[rng.next_below(12)]) + " r" +
             std::to_string(rd()) + ", r" + std::to_string(rs()) + ", r" +
             std::to_string(rs()) + "\n";
        break;
      case 1:
        s += std::string(kRi[rng.next_below(6)]) + " r" +
             std::to_string(rd()) + ", r" + std::to_string(rs()) + ", " +
             std::to_string(rng.uniform_int(0, 15)) + "\n";
        break;
      case 2:
        s += "ldw r" + std::to_string(rd()) + ", [r4+" +
             std::to_string(4 * rng.next_below(32)) + "]\n";
        break;
      case 3:
        s += "stw [r4+" + std::to_string(4 * rng.next_below(32)) + "], r" +
             std::to_string(rs()) + "\n";
        break;
      case 4:
        s += "wait " + std::to_string(rng.uniform_int(0, 20)) + "\n";
        break;
      case 5: {
        // Data-dependent forward branch over one instruction: block entry
        // points at both the taken and the fall-through pc.
        const std::string label = "fwd" + std::to_string(fwd++);
        s += std::string(kBr[rng.next_below(4)]) + " r" +
             std::to_string(rs()) + ", r" + std::to_string(rs()) + ", " +
             label + "\n";
        s += "addi r" + std::to_string(rd()) + ", r" +
             std::to_string(rs()) + ", 1\n";
        s += label + ":\n";
        break;
      }
    }
  }
  s += "subi r1, r1, 1\n";
  s += "bne r1, r0, loop\n";
  const int tail = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < tail; ++i) {
    s += "abs r" + std::to_string(rd()) + ", r" + std::to_string(rs()) +
         "\n";
  }
  s += "halt\n";
  return s;
}

TEST(BlockCacheRisc, RandomProgramsMatchInterpreter) {
  Rng rng(0xB10CCACE);
  for (int trial = 0; trial < 40; ++trial) {
    const std::string text = random_risc_program(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + "\n" + text);
    expect_risc_identical(riscsim::assemble(text));
  }
}

TEST(BlockCacheRisc, DivisionByZeroThrowsIdenticallyMidRun) {
  // The fault fires on the third loop iteration, after the block has been
  // decoded and replayed — the partial architectural state at the throw
  // must match the interpreter exactly.
  const riscsim::Program program = riscsim::assemble(R"(
    movi r1, 5
    movi r2, 3
    loop:
      addi r3, r3, 7
      subi r2, r2, 1
      div  r4, r3, r2
      subi r1, r1, 1
      bne  r1, r0, loop
    halt
  )");
  expect_risc_identical(program);
  const RiscOutcome out = run_risc(program, true);
  EXPECT_TRUE(out.threw);
  EXPECT_NE(out.error.find("division by zero"), std::string::npos)
      << out.error;
}

TEST(BlockCacheRisc, RunningOffTheEndThrowsIdentically) {
  // No terminator: the decoded block has has_term == false and must raise
  // the interpreter's pc-out-of-range error after executing the body.
  const riscsim::Program program = riscsim::assemble(R"(
    movi r2, 11
    addi r2, r2, 1
  )");
  expect_risc_identical(program);
  const RiscOutcome out = run_risc(program, true);
  EXPECT_TRUE(out.threw);
  EXPECT_EQ(out.regs[2], 12u);  // the body still ran to completion
}

TEST(BlockCacheRisc, MaxStepsCutoffIsCycleExact) {
  const riscsim::Program program = riscsim::assemble(R"(
    loop:
      addi r2, r2, 1
      stw  [r4+16], r2
      jmp  loop
  )");
  // Odd limits land the cutoff in the middle of the decoded block.
  for (std::uint64_t max_steps : {0u, 1u, 2u, 3u, 7u, 100u, 101u}) {
    SCOPED_TRACE("max_steps " + std::to_string(max_steps));
    expect_risc_identical(program, {}, max_steps);
    const RiscOutcome out = run_risc(program, true, {}, nullptr, max_steps);
    EXPECT_FALSE(out.threw);
    EXPECT_FALSE(out.result.halted);
    EXPECT_EQ(out.result.instructions, max_steps);
  }
}

TEST(BlockCacheRisc, HandBuiltProgramsBypassTheCache) {
  // Id 0 promises nothing about immutability, so the cache must stay out
  // of the way: mutating the code between runs takes effect immediately.
  riscsim::Program program;
  riscsim::Instr movi;
  movi.op = riscsim::Op::kMovi;
  movi.rd = 2;
  movi.imm = 10;
  riscsim::Instr halt;
  halt.op = riscsim::Op::kHalt;
  program.code = {movi, halt};
  ASSERT_EQ(program.id, 0u);

  FastpathGuard guard(true);
  riscsim::Cpu cpu;
  EXPECT_EQ(cpu.run(program).cycles, run_risc(program, false).result.cycles);
  EXPECT_EQ(cpu.reg(2), 10u);
  program.code[0].imm = 99;  // legal: id == 0 means "not cacheable"
  cpu.run(program);
  EXPECT_EQ(cpu.reg(2), 99u);
}

/// Coprocessor stub whose latencies depend on call order and whose log pins
/// the absolute issue cycle of every trig/kexec — replay must interleave
/// the dynamic latencies into the pre-resolved block costs exactly.
class RecordingCoprocessor : public riscsim::Coprocessor {
 public:
  Cycles trigger(const std::vector<std::uint8_t>& bytes, Cycles now) override {
    triggers.emplace_back(bytes, now);
    return 40 + static_cast<Cycles>(bytes.size()) +
           static_cast<Cycles>(triggers.size() % 3);
  }
  Cycles kernel(std::uint32_t kernel_id, Cycles now) override {
    kernels.emplace_back(kernel_id, now);
    return 100 + kernel_id * 7 + static_cast<Cycles>(kernels.size() % 5);
  }
  std::vector<std::pair<std::vector<std::uint8_t>, Cycles>> triggers;
  std::vector<std::pair<std::uint32_t, Cycles>> kernels;
};

TEST(BlockCacheRisc, CoprocessorCallsKeepExactIssueCycles) {
  const riscsim::Program program = riscsim::assemble(R"(
    movi r3, 3
    loop:
      trig  16, 4
      wait  7
      kexec 2
      subi  r3, r3, 1
      bne   r3, r0, loop
    halt
  )");
  const auto setup = [](riscsim::Cpu& cpu) {
    for (std::size_t b = 0; b < 4; ++b) {
      cpu.memory().write8(16 + b, static_cast<std::uint8_t>(0xA0 + b));
    }
  };
  RecordingCoprocessor slow_cop;
  RecordingCoprocessor fast_cop;
  const RiscOutcome slow = run_risc(program, false, setup, &slow_cop);
  const RiscOutcome fast = run_risc(program, true, setup, &fast_cop);
  EXPECT_TRUE(slow == fast);
  EXPECT_TRUE(slow.result.halted);
  EXPECT_EQ(slow_cop.triggers, fast_cop.triggers);
  EXPECT_EQ(slow_cop.kernels, fast_cop.kernels);
  ASSERT_EQ(fast_cop.triggers.size(), 3u);
  EXPECT_EQ(fast_cop.triggers[0].first,
            (std::vector<std::uint8_t>{0xA0, 0xA1, 0xA2, 0xA3}));
}

TEST(BlockCacheRisc, ManyProgramsSurviveTheCacheGrowthGuard) {
  // One CPU, more programs than the cache retains (it drops everything past
  // 64 entries): every run must stay correct through eviction + re-decode.
  FastpathGuard guard(true);
  riscsim::Cpu cpu;
  std::vector<riscsim::Program> programs;
  for (int i = 0; i < 70; ++i) {
    programs.push_back(riscsim::assemble(
        "movi r2, " + std::to_string(i) + "\naddi r2, r2, " +
        std::to_string(i + 1) + "\nhalt\n"));
  }
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 70; ++i) {
      cpu.run(programs[static_cast<std::size_t>(i)]);
      EXPECT_EQ(cpu.reg(2), static_cast<std::uint32_t>(2 * i + 1))
          << "round " << round << " program " << i;
    }
  }
  cpu.invalidate_block_cache();
  cpu.run(programs[0]);
  EXPECT_EQ(cpu.reg(2), 1u);
}

// --- cgsim: interpreter vs decoded cache -----------------------------------

struct CgOutcome {
  cgsim::CgRunResult result{};
  bool threw = false;
  std::string error;
  std::array<std::uint32_t, cgsim::kNumCgRegisters> regs{};
  std::vector<std::uint32_t> mem;
};

CgOutcome run_cg(const cgsim::CgContextProgram& program, bool fast,
                 const std::function<void(cgsim::CgExecutor&)>& setup = {},
                 std::uint64_t max_steps = 1'000'000) {
  FastpathGuard guard(fast);
  cgsim::CgExecutor exec;
  if (setup) setup(exec);
  CgOutcome out;
  try {
    out.result = exec.run(program, max_steps);
  } catch (const std::exception& e) {
    out.threw = true;
    out.error = e.what();
  }
  for (unsigned r = 0; r < cgsim::kNumCgRegisters; ++r) {
    out.regs[r] = exec.reg(r);
  }
  for (std::size_t addr = 0; addr < 1024; addr += 4) {
    out.mem.push_back(exec.memory().read32(addr));
  }
  return out;
}

void expect_cg_identical(const cgsim::CgContextProgram& program,
                         const std::function<void(cgsim::CgExecutor&)>& setup =
                             {},
                         std::uint64_t max_steps = 1'000'000) {
  const CgOutcome slow = run_cg(program, false, setup, max_steps);
  const CgOutcome fast = run_cg(program, true, setup, max_steps);
  EXPECT_EQ(slow.threw, fast.threw);
  EXPECT_EQ(slow.error, fast.error);
  EXPECT_EQ(slow.result.cycles, fast.result.cycles);
  EXPECT_EQ(slow.result.instructions, fast.result.instructions);
  EXPECT_EQ(slow.result.halted, fast.result.halted);
  EXPECT_EQ(slow.regs, fast.regs);
  EXPECT_EQ(slow.mem, fast.mem);
}

cgsim::CgInstr cg(cgsim::CgOp op, unsigned rd = 0, unsigned rs1 = 0,
                  unsigned rs2 = 0, std::int32_t imm = 0, unsigned aux = 0) {
  cgsim::CgInstr in;
  in.op = op;
  in.rd = static_cast<std::uint8_t>(rd);
  in.rs1 = static_cast<std::uint8_t>(rs1);
  in.rs2 = static_cast<std::uint8_t>(rs2);
  in.imm = imm;
  in.aux = static_cast<std::uint16_t>(aux);
  return in;
}

/// Random straight-line CG program with a flat zero-overhead loop. Register
/// 60 is the memory base (never written by the random body; setup seeds it).
cgsim::CgContextProgram random_cg_program(Rng& rng) {
  using cgsim::CgOp;
  static const CgOp kRr[] = {CgOp::kAdd, CgOp::kSub, CgOp::kAnd, CgOp::kOr,
                             CgOp::kXor, CgOp::kShl, CgOp::kShr, CgOp::kMul,
                             CgOp::kMac, CgOp::kMin, CgOp::kMax};
  auto rd = [&] { return static_cast<unsigned>(rng.next_below(16)); };
  cgsim::CgContextProgram p;
  p.name = "fuzz";
  auto emit_random = [&] {
    switch (rng.next_below(5)) {
      case 0:
        p.code.push_back(cg(kRr[rng.next_below(11)], rd(), rd(), rd()));
        break;
      case 1:
        p.code.push_back(cg(CgOp::kMovi, rd(), 0, 0,
                            static_cast<std::int32_t>(
                                rng.uniform_int(-1000, 1000))));
        break;
      case 2:
        p.code.push_back(cg(CgOp::kAddi, rd(), rd(), 0,
                            static_cast<std::int32_t>(
                                rng.uniform_int(0, 63))));
        break;
      case 3:
        p.code.push_back(cg(CgOp::kLd, rd(), 60, 0,
                            static_cast<std::int32_t>(
                                4 * rng.next_below(64))));
        break;
      case 4:
        p.code.push_back(cg(CgOp::kSt, 0, 60, rd(),
                            static_cast<std::int32_t>(
                                4 * rng.next_below(64))));
        break;
    }
  };
  const int prelude = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < prelude; ++i) emit_random();
  const unsigned body = static_cast<unsigned>(rng.uniform_int(1, 3));
  const auto trips =
      static_cast<std::int32_t>(rng.uniform_int(0, 4));  // 0 = zero-trip
  p.code.push_back(cg(CgOp::kLoop, 0, 0, 0, trips, body));
  for (unsigned i = 0; i < body; ++i) emit_random();
  const int tail = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < tail; ++i) emit_random();
  if (rng.next_below(2) == 0) p.code.push_back(cg(cgsim::CgOp::kHalt));
  // else: fall off the end — the implicit-halt path must match too.
  return p;
}

TEST(BlockCacheCg, RandomProgramsMatchInterpreter) {
  Rng rng(0xC6CACE);
  const auto setup = [](cgsim::CgExecutor& exec) {
    exec.set_reg(60, 512);
    for (unsigned r = 0; r < 16; ++r) exec.set_reg(r, 3 * r + 1);
  };
  for (int trial = 0; trial < 40; ++trial) {
    const cgsim::CgContextProgram program = random_cg_program(rng);
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_cg_identical(program, setup);
  }
}

TEST(BlockCacheCg, NestedLoopsTwoDeepMatch) {
  using cgsim::CgOp;
  cgsim::CgContextProgram p;
  p.name = "nested";
  p.code = {
      cg(CgOp::kMovi, 1, 0, 0, 0),
      cg(CgOp::kLoop, 0, 0, 0, 3, 4),   // outer: next 4 instrs, 3 times
      cg(CgOp::kAddi, 1, 1, 0, 100),
      cg(CgOp::kLoop, 0, 0, 0, 2, 2),   // inner: next 2 instrs, 2 times
      cg(CgOp::kAddi, 1, 1, 0, 1),
      cg(CgOp::kMul, 2, 1, 1),
      cg(CgOp::kHalt),
  };
  expect_cg_identical(p);
  const CgOutcome out = run_cg(p, true);
  EXPECT_TRUE(out.result.halted);
  EXPECT_EQ(out.regs[1], 306u);  // 3 * (100 + 2)
}

TEST(BlockCacheCg, LoopDepthThreeThrowsIdentically) {
  using cgsim::CgOp;
  cgsim::CgContextProgram p;
  p.name = "deep";
  p.code = {
      cg(CgOp::kLoop, 0, 0, 0, 2, 5),
      cg(CgOp::kLoop, 0, 0, 0, 2, 3),
      cg(CgOp::kLoop, 0, 0, 0, 2, 1),
      cg(CgOp::kNop),
      cg(CgOp::kNop),
      cg(CgOp::kNop),
      cg(CgOp::kHalt),
  };
  expect_cg_identical(p);
  const CgOutcome out = run_cg(p, true);
  EXPECT_TRUE(out.threw);
}

TEST(BlockCacheCg, DivisionByZeroThrowsIdentically) {
  using cgsim::CgOp;
  cgsim::CgContextProgram p;
  p.name = "div0";
  p.code = {
      cg(CgOp::kMovi, 1, 0, 0, 84),
      cg(CgOp::kMovi, 2, 0, 0, 2),
      cg(CgOp::kDiv, 3, 1, 2),   // fine: 84 / 2
      cg(CgOp::kDiv, 4, 1, 5),   // r5 == 0
      cg(CgOp::kHalt),
  };
  expect_cg_identical(p);
  const CgOutcome out = run_cg(p, true);
  EXPECT_TRUE(out.threw);
  EXPECT_EQ(out.regs[3], 42u);  // the good divide landed before the throw
}

TEST(BlockCacheCg, CacheRekeysAcrossAlternatingPrograms) {
  // One executor, two programs run alternately: the one-entry cache must
  // re-key (and re-validate) on every switch without drifting from the
  // interpreter.
  using cgsim::CgOp;
  cgsim::CgContextProgram a;
  a.name = "a";
  a.code = {cg(CgOp::kMovi, 1, 0, 0, 7), cg(CgOp::kShli, 1, 1, 0, 2),
            cg(CgOp::kHalt)};
  cgsim::CgContextProgram b;
  b.name = "b";
  b.code = {cg(CgOp::kMovi, 1, 0, 0, 5), cg(CgOp::kLoop, 0, 0, 0, 3, 1),
            cg(CgOp::kAddi, 1, 1, 0, 10), cg(CgOp::kHalt)};

  const Cycles a_cycles = run_cg(a, false).result.cycles;
  const Cycles b_cycles = run_cg(b, false).result.cycles;
  FastpathGuard guard(true);
  cgsim::CgExecutor exec;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(exec.run(a).cycles, a_cycles) << "round " << i;
    EXPECT_EQ(exec.reg(1), 28u);
    EXPECT_EQ(exec.run(b).cycles, b_cycles) << "round " << i;
    EXPECT_EQ(exec.reg(1), 35u);
  }
  exec.invalidate_program_cache();
  EXPECT_EQ(exec.run(a).cycles, a_cycles);
}

// --- Whole-stack differentials: sweeps and fault-induced re-execution ------

class BlockCacheSweep : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    H264AppParams params;
    params.frames = 2;  // same setting as the bench smokes
    app_ = new H264Application(build_h264_application(params));
  }
  static void TearDownTestSuite() {
    delete app_;
    app_ = nullptr;
  }

  /// fig-8-style mini sweep rendered to a CSV string at \p jobs workers.
  static std::string render_csv(unsigned jobs) {
    const std::vector<FabricCombination> points = fabric_sweep(2, 1);
    const SweepRunner runner(jobs);
    const std::vector<Cycles> rows =
        runner.map(points, [](const FabricCombination& c) {
          MRts rts(app_->library, c.cg, c.prcs);
          return run_application(rts, app_->trace).total_cycles;
        });
    CsvWriter csv;
    csv.write_header({"label", "mrts_cycles"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      csv.write_values(points[i].label(), rows[i]);
    }
    return csv.str();
  }

  static Cycles run_faulty(double rate, std::uint64_t seed) {
    MRtsConfig config;
    if (rate > 0.0) {
      config.fault = FaultModelConfig::uniform(rate, seed, /*max_retries=*/3);
    }
    MRts rts(app_->library, 2, 2, config);
    return run_application(rts, app_->trace).total_cycles;
  }

  static H264Application* app_;
};

H264Application* BlockCacheSweep::app_ = nullptr;

TEST_F(BlockCacheSweep, SweepIdenticalCacheOnOffAtEveryWorkerCount) {
  std::string oracle;
  {
    FastpathGuard guard(false);
    oracle = render_csv(1);
  }
  ASSERT_FALSE(oracle.empty());
  {
    FastpathGuard guard(false);
    EXPECT_EQ(render_csv(4), oracle) << "interpreter, jobs=4";
  }
  FastpathGuard guard(true);
  for (unsigned jobs : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(render_csv(jobs), oracle) << "cache on, jobs=" << jobs;
  }
}

TEST_F(BlockCacheSweep, FaultInducedReExecutionIdenticalCacheOnOff) {
  // Fault injection retries/re-executes kernels and quarantines fabric —
  // the heaviest consumer of the batched frame-execution path. The cycle
  // totals must not depend on the fast path at any fault rate.
  for (double rate : {0.0, 0.3, 1.0}) {
    SCOPED_TRACE("rate " + std::to_string(rate));
    Cycles slow = 0;
    Cycles fast = 0;
    {
      FastpathGuard guard(false);
      slow = run_faulty(rate, 42);
    }
    {
      FastpathGuard guard(true);
      fast = run_faulty(rate, 42);
    }
    EXPECT_EQ(slow, fast);
  }
}

}  // namespace
}  // namespace mrts
