// Compile-level test: the umbrella header must expose the whole public API
// without conflicts, and the headline types must be usable from it alone.

#include "mrts.h"

#include <gtest/gtest.h>

namespace mrts {
namespace {

TEST(Umbrella, PublicApiIsReachable) {
  IseLibrary lib;
  IseBuildSpec spec;
  spec.kernel_name = "K";
  spec.sw_latency = 100;
  spec.fg_data_path_names = {"k_fg"};
  spec.cg_data_path_names = {"k_cg"};
  const KernelId k = build_kernel_ises(lib, spec);

  MRts rts(lib, 1, 1);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({k, 100.0, 10, 10});
  const SelectionOutcome out = rts.on_trigger(ti, 0);
  EXPECT_FALSE(out.selection.selected.empty());
  EXPECT_EQ(rts.execute_kernel(k, 0).latency, 100u);
}

}  // namespace
}  // namespace mrts
