// Property tests pitting the ECU's O(1) cached-timeline implementation
// against a brute-force oracle that recomputes the Fig. 7 decision from
// first principles at every execution, over randomized ISE libraries,
// installations and execution times. Also checks that the ReconfigPlanner's
// hypothetical schedule matches what FabricManager::install actually does.

#include <gtest/gtest.h>

#include <map>

#include "arch/fabric_manager.h"
#include "rts/ecu.h"
#include "rts/reconfig_plan.h"
#include "util/rng.h"

namespace mrts {
namespace {

struct Scenario {
  IseLibrary lib;
  FabricManager fabric;
  std::vector<IsePlacement> placements;
  std::map<std::uint32_t, IseId> selected;  // kernel -> selected ISE

  Scenario(unsigned num_cg, unsigned num_prcs)
      : fabric(num_cg, num_prcs, &lib.data_paths()) {}
};

/// Builds a random library of `kernels` kernels with random single/multi
/// data-path ISEs over a shared pool of data paths, installs a random
/// feasible selection and returns everything needed for the comparison.
/// Latencies are made unique so the oracle and the ECU must agree exactly.
std::unique_ptr<Scenario> random_scenario(Rng& rng) {
  const auto num_cg = static_cast<unsigned>(rng.uniform_int(1, 3));
  const auto num_prcs = static_cast<unsigned>(rng.uniform_int(1, 4));
  auto sc = std::make_unique<Scenario>(num_cg, num_prcs);

  // Data-path pool.
  const int pool_fg = static_cast<int>(rng.uniform_int(2, 4));
  const int pool_cg = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<DataPathId> fg_pool;
  std::vector<DataPathId> cg_pool;
  for (int i = 0; i < pool_fg; ++i) {
    DataPathDesc dp;
    dp.name = std::string("fg").append(std::to_string(i));
    dp.grain = Grain::kFine;
    fg_pool.push_back(sc->lib.data_paths().add(dp));
  }
  for (int i = 0; i < pool_cg; ++i) {
    DataPathDesc dp;
    dp.name = std::string("cg").append(std::to_string(i));
    dp.grain = Grain::kCoarse;
    dp.context_instructions =
        static_cast<unsigned>(rng.uniform_int(8, 32));
    cg_pool.push_back(sc->lib.data_paths().add(dp));
  }

  // Kernels with random ISE variants; unique latencies via a counter.
  Cycles unique = 10'000;
  const int kernels = static_cast<int>(rng.uniform_int(1, 3));
  for (int k = 0; k < kernels; ++k) {
    const Cycles sw = 20'000 + 1000 * static_cast<Cycles>(k);
    const KernelId kid =
        sc->lib.add_kernel(std::string("K").append(std::to_string(k)), sw);
    const int variants = static_cast<int>(rng.uniform_int(1, 4));
    for (int v = 0; v < variants; ++v) {
      IseVariant var;
      var.kernel = kid;
      var.name = std::string("K")
                     .append(std::to_string(k))
                     .append(".V")
                     .append(std::to_string(v));
      const int dps = static_cast<int>(rng.uniform_int(1, 3));
      for (int d = 0; d < dps; ++d) {
        const bool fine = rng.bernoulli(0.5);
        const auto& pool = fine ? fg_pool : cg_pool;
        var.data_paths.push_back(
            pool[static_cast<std::size_t>(rng.next_below(pool.size()))]);
      }
      var.latency_after.resize(var.data_paths.size() + 1);
      var.latency_after[0] = sw;
      Cycles prev = sw;
      for (std::size_t i = 1; i < var.latency_after.size(); ++i) {
        // Strictly decreasing, globally unique latencies.
        prev = prev - 1 - (unique % 977);
        unique += 13;
        var.latency_after[i] = prev;
      }
      sc->lib.add_ise(var);
    }
  }

  // Random feasible selection: greedily take kernels' random variants that
  // still fit.
  std::vector<IsePlacementRequest> requests;
  unsigned free_fg = num_prcs;
  unsigned free_cg = num_cg;
  for (const auto& kernel : sc->lib.kernels()) {
    if (kernel.ises.empty() || rng.bernoulli(0.25)) continue;
    const IseId choice = kernel.ises[static_cast<std::size_t>(
        rng.next_below(kernel.ises.size()))];
    const IseVariant& var = sc->lib.ise(choice);
    if (var.fg_units > free_fg || var.cg_units > free_cg) continue;
    free_fg -= var.fg_units;
    free_cg -= var.cg_units;
    requests.push_back({choice, kernel.id, var.data_paths});
    sc->selected[raw(kernel.id)] = choice;
  }
  sc->placements = sc->fabric.install(requests, /*now=*/0);
  return sc;
}

/// Brute-force Fig. 7 decision at time t (monoCG disabled).
Cycles oracle_latency(const Scenario& sc, KernelId kernel, Cycles t,
                      bool use_intermediates, bool use_cross) {
  const Kernel& k = sc.lib.kernel(kernel);
  Cycles best = k.sw_latency;

  const auto it = sc.selected.find(raw(kernel));
  const IseId selected = it == sc.selected.end() ? kInvalidIse : it->second;

  for (IseId ise_id : k.ises) {
    const bool is_selected = ise_id == selected;
    if (!is_selected && !use_cross) continue;
    const IseVariant& ise = sc.lib.ise(ise_id);

    // Availability level from the live fabric (multiset semantics).
    std::map<std::uint32_t, unsigned> need;
    std::size_t live_level = 0;
    for (std::size_t i = 0; i < ise.data_paths.size(); ++i) {
      const unsigned required = ++need[raw(ise.data_paths[i])];
      if (sc.fabric.available_instances(ise.data_paths[i], t) < required) {
        break;
      }
      live_level = i + 1;
    }
    // Fig. 7's availability check is physical: for the *selected* ISE the
    // live fabric state counts even with cross-coverage disabled (its data
    // paths may complete early through sharing); other ISEs of the kernel
    // are only considered when cross-coverage is on.
    std::size_t level = (use_cross || is_selected) ? live_level : 0;
    if (is_selected) {
      // The installer's schedule for the selected ISE.
      for (const auto& p : sc.placements) {
        if (p.ise != ise_id) continue;
        std::size_t installed = 0;
        for (std::size_t i = 0; i < p.prefix_ready.size(); ++i) {
          if (p.prefix_ready[i] <= t) installed = i + 1;
        }
        level = std::max(level, installed);
      }
    }
    if (!use_intermediates && level < ise.num_data_paths()) continue;
    if (level == 0) continue;
    best = std::min(best, ise.latency_after[level]);
  }
  return best;
}

TEST(EcuOracle, CachedTimelineMatchesBruteForce) {
  Rng rng(0xEC0);
  for (int trial = 0; trial < 60; ++trial) {
    const auto sc = random_scenario(rng);
    for (const bool use_intermediates : {true, false}) {
      for (const bool use_cross : {true, false}) {
        Ecu ecu(sc->lib, sc->fabric,
                Ecu::Config{use_intermediates, use_cross,
                            /*use_mono_cg=*/false});
        ecu.begin_block(sc->placements, 0);
        // Probe at increasing times (the ECU requires monotone `now`).
        Cycles t = 0;
        for (int probe = 0; probe < 12; ++probe) {
          t += static_cast<Cycles>(rng.uniform_int(0, 300'000));
          for (const auto& kernel : sc->lib.kernels()) {
            const Cycles expected = oracle_latency(
                *sc, kernel.id, t, use_intermediates, use_cross);
            const ExecOutcome out = ecu.execute(kernel.id, t);
            // The ECU may add a 2-cycle context switch on kernel changes.
            EXPECT_GE(out.latency, expected)
                << "trial " << trial << " t=" << t << " kernel "
                << kernel.name << " inter=" << use_intermediates
                << " cross=" << use_cross;
            EXPECT_LE(out.latency, expected + 2)
                << "trial " << trial << " t=" << t << " kernel "
                << kernel.name << " inter=" << use_intermediates
                << " cross=" << use_cross;
          }
        }
      }
    }
  }
}

TEST(PlannerOracle, PlannerPredictionMatchesInstall) {
  // Committing a selection through the planner must predict exactly the
  // ready times the FabricManager then realizes, for any fresh fabric.
  Rng rng(0x91A);
  for (int trial = 0; trial < 40; ++trial) {
    const auto sc = random_scenario(rng);  // install happened at now=0
    // Re-derive the prediction from an identical, empty machine.
    FabricManager fresh(sc->fabric.num_cg_fabrics(), sc->fabric.num_prcs(),
                        &sc->lib.data_paths());
    ReconfigPlanner planner(sc->lib.data_paths(), fresh, 0);
    for (const auto& p : sc->placements) {
      const IseVariant& ise = sc->lib.ise(p.ise);
      const std::vector<Cycles> predicted = planner.commit(ise.data_paths);
      ASSERT_EQ(predicted.size(), p.instance_ready.size());
      for (std::size_t i = 0; i < predicted.size(); ++i) {
        EXPECT_EQ(predicted[i], p.instance_ready[i])
            << "trial " << trial << " ise " << ise.name << " dp " << i;
      }
    }
  }
}

}  // namespace
}  // namespace mrts
