// End-to-end integration tests reproducing the *qualitative* claims of the
// evaluation section on a reduced workload (full sweeps live in bench/):
//
//  * Fig. 8: mRTS is at least as fast as the RISPP-like, Morpheus/4S-like
//    and offline-optimal schemes on multi-grained fabric combinations.
//  * Fig. 9: the heuristic selector stays close to the run-time optimal.
//  * Fig. 10: FG-only / CG-only / MG speedup ordering vs RISC mode.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/morpheus4s_rts.h"
#include "baselines/offline_optimal_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    H264AppParams params;
    params.frames = 5;
    params.macroblocks = 396;  // CIF: blocks must dwarf the FG reconfig time
    app_ = new H264Application(build_h264_application(params));
    profile_ = new std::vector<BlockProfile>(
        profile_application(app_->trace, app_->library));
    RiscOnlyRts risc(app_->library);
    risc_cycles_ = run_application(risc, app_->trace).total_cycles;
  }

  static void TearDownTestSuite() {
    delete app_;
    delete profile_;
    app_ = nullptr;
    profile_ = nullptr;
  }

  static Cycles run_mrts(unsigned cg, unsigned prcs) {
    MRts rts(app_->library, cg, prcs);
    return run_application(rts, app_->trace).total_cycles;
  }

  static H264Application* app_;
  static std::vector<BlockProfile>* profile_;
  static Cycles risc_cycles_;
};

H264Application* IntegrationTest::app_ = nullptr;
std::vector<BlockProfile>* IntegrationTest::profile_ = nullptr;
Cycles IntegrationTest::risc_cycles_ = 0;

TEST_F(IntegrationTest, MrtsNeverSlowerThanRiscMode) {
  for (const auto& combo : fabric_sweep(2, 2)) {
    const Cycles cycles = run_mrts(combo.cg, combo.prcs);
    EXPECT_LE(cycles, risc_cycles_ + risc_cycles_ / 100)
        << "combo " << combo.label();
  }
}

TEST_F(IntegrationTest, SpeedupGrowsWithFabric) {
  const Cycles none = run_mrts(0, 0);
  const Cycles some = run_mrts(1, 1);
  const Cycles more = run_mrts(3, 3);
  EXPECT_LT(some, none);
  EXPECT_LT(more, some);
}

TEST_F(IntegrationTest, MultiGrainedBeatsSingleGrainFig10) {
  // Fig. 10: 1 PRC + 1 CG outperforms 3 PRCs (FG-only) and 3 CGs (CG-only).
  const Cycles mg_small = run_mrts(1, 1);
  const Cycles fg_only = run_mrts(0, 3);
  const Cycles cg_only = run_mrts(3, 0);
  EXPECT_LT(mg_small, fg_only);
  EXPECT_LT(mg_small, cg_only);
}

TEST_F(IntegrationTest, MrtsBeatsBaselinesOnMultiGrainedFabric) {
  const unsigned cg = 2;
  const unsigned prcs = 2;
  const Cycles mrts_cycles = run_mrts(cg, prcs);

  RisppRts rispp(app_->library, cg, prcs);
  const Cycles rispp_cycles = run_application(rispp, app_->trace).total_cycles;

  Morpheus4sRts morpheus(app_->library, cg, prcs, *profile_);
  const Cycles morpheus_cycles =
      run_application(morpheus, app_->trace).total_cycles;

  OfflineOptimalRts offline(app_->library, cg, prcs, *profile_);
  const Cycles offline_cycles =
      run_application(offline, app_->trace).total_cycles;

  EXPECT_LE(mrts_cycles, rispp_cycles);
  EXPECT_LE(mrts_cycles, morpheus_cycles);
  // The offline-optimal baseline here is stronger than the paper's (it
  // replaces per block at run time and executes intermediate ISEs); mRTS
  // must stay at least on par with it.
  EXPECT_LE(mrts_cycles, offline_cycles + offline_cycles / 33);
  // And the paper's headline: clearly faster than the task-level scheme.
  EXPECT_LT(static_cast<double>(mrts_cycles),
            0.95 * static_cast<double>(morpheus_cycles));
}

TEST_F(IntegrationTest, MrtsMatchesRisppWhenNoCgFabricExists) {
  // Fig. 8 note: with FG-only resources mRTS behaves like the (extended)
  // RISPP approach - no monoCG, no MG-ISEs possible.
  const Cycles mrts_cycles = run_mrts(0, 3);
  RisppRts rispp(app_->library, 0, 3);
  const Cycles rispp_cycles = run_application(rispp, app_->trace).total_cycles;
  const double ratio = static_cast<double>(rispp_cycles) /
                       static_cast<double>(mrts_cycles);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.35);
}

TEST_F(IntegrationTest, HeuristicCloseToOnlineOptimalFig9) {
  // Compare achieved execution time of the heuristic selector vs the
  // branch & bound optimal selector on a multi-grained combination.
  const Cycles heuristic_cycles = run_mrts(2, 2);
  MRtsConfig cfg;
  cfg.use_optimal_selector = true;
  cfg.charge_selection_overhead = false;  // the optimal is a yardstick only
  MRts optimal(app_->library, 2, 2, cfg);
  const Cycles optimal_cycles =
      run_application(optimal, app_->trace).total_cycles;
  const double diff = percent_difference(
      static_cast<double>(optimal_cycles),
      static_cast<double>(heuristic_cycles));
  // The paper reports <= ~3% when at least one CG fabric is available and
  // ~11% worst case; allow the paper's worst case plus margin.
  EXPECT_LT(diff, 15.0);
  EXPECT_GT(diff, -5.0) << "optimal should not lose badly to the heuristic";
}

TEST_F(IntegrationTest, AcceleratedExecutionFractionIsHigh) {
  MRts rts(app_->library, 2, 2);
  const AppRunResult r = run_application(rts, app_->trace);
  EXPECT_LT(r.impl_fraction(ImplKind::kRisc), 0.35)
      << "with a multi-grained fabric most executions must be accelerated";
}

TEST_F(IntegrationTest, SelectionOverheadIsSmallFractionOfRuntime) {
  // Section 5.4: ~1.9% of the average functional-block execution time.
  MRts rts(app_->library, 2, 2);
  const AppRunResult r = run_application(rts, app_->trace);
  const double fraction =
      static_cast<double>(r.blocking_overhead) /
      static_cast<double>(r.total_cycles);
  EXPECT_LT(fraction, 0.05);
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  EXPECT_EQ(run_mrts(2, 2), run_mrts(2, 2));
}

}  // namespace
}  // namespace mrts
