// Tests the application-binary path: the trace compiled into a core binary
// (trigger instructions + kexec coprocessor calls + wait delays) and executed
// on the riscsim Cpu must be cycle-exact with the abstract simulator, for
// every run-time system.

#include <gtest/gtest.h>

#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/iss_bridge.h"
#include "workload/h264_app.h"
#include "workload/sdr_app.h"

namespace mrts {
namespace {

H264Application small_h264() {
  H264AppParams params;
  params.frames = 3;
  params.macroblocks = 120;
  return build_h264_application(params);
}

TEST(IssBridge, CompilationLaysOutTriggersAndEvents) {
  const H264Application app = small_h264();
  const IssApplication binary = compile_trace_to_binary(app.trace);
  // One trig per block, one kexec per event, waits for the gaps, one halt.
  std::size_t trigs = 0;
  std::size_t kexecs = 0;
  for (const auto& in : binary.program.code) {
    if (in.op == riscsim::Op::kTrig) ++trigs;
    if (in.op == riscsim::Op::kKexec) ++kexecs;
  }
  EXPECT_EQ(trigs, app.trace.blocks.size());
  EXPECT_EQ(kexecs, app.trace.total_events());
  EXPECT_EQ(binary.program.code.back().op, riscsim::Op::kHalt);
  EXPECT_EQ(binary.data_segment.size(), app.trace.blocks.size());
  EXPECT_GT(binary.memory_bytes, 0u);
}

TEST(IssBridge, BinaryExecutionIsCycleExactWithAbstractSimulator) {
  const H264Application app = small_h264();
  const IssApplication binary = compile_trace_to_binary(app.trace);

  // RISC-only first (no RTS state at all).
  {
    RiscOnlyRts abstract_rts(app.library);
    const Cycles abstract =
        run_application(abstract_rts, app.trace).total_cycles;
    RiscOnlyRts binary_rts(app.library);
    const IssRunResult iss = run_binary(binary, binary_rts);
    ASSERT_TRUE(iss.halted);
    // The only extra cycle is the final halt instruction.
    EXPECT_EQ(iss.cycles, abstract + 1);
  }

  // Full mRTS: selections, reconfiguration, MPU learning, monoCG — all of
  // it must behave identically when driven through the instruction stream.
  {
    MRts abstract_rts(app.library, 2, 2);
    const Cycles abstract =
        run_application(abstract_rts, app.trace).total_cycles;
    MRts binary_rts(app.library, 2, 2);
    const IssRunResult iss = run_binary(binary, binary_rts);
    ASSERT_TRUE(iss.halted);
    EXPECT_EQ(iss.cycles, abstract + 1);
  }

  // RISPP-like as well (different selector pricing, no monoCG).
  {
    RisppRts abstract_rts(app.library, 2, 2);
    const Cycles abstract =
        run_application(abstract_rts, app.trace).total_cycles;
    RisppRts binary_rts(app.library, 2, 2);
    const IssRunResult iss = run_binary(binary, binary_rts);
    EXPECT_EQ(iss.cycles, abstract + 1);
  }
}

TEST(IssBridge, WorksOnTheSdrWorkloadToo) {
  SdrAppParams params;
  params.bursts = 3;
  params.batches = 150;
  const SdrApplication app = build_sdr_application(params);
  const IssApplication binary = compile_trace_to_binary(app.trace);

  MRts abstract_rts(app.library, 1, 2);
  const Cycles abstract = run_application(abstract_rts, app.trace).total_cycles;
  MRts binary_rts(app.library, 1, 2);
  const IssRunResult iss = run_binary(binary, binary_rts);
  EXPECT_EQ(iss.cycles, abstract + 1);
}

TEST(IssBridge, KexecWithoutTriggerThrows) {
  IseLibrary lib;
  lib.add_kernel("K", 100);
  RiscOnlyRts rts(lib);
  IssApplication app;
  riscsim::Instr kexec;
  kexec.op = riscsim::Op::kKexec;
  kexec.imm = 0;
  app.program.code.push_back(kexec);
  riscsim::Instr halt;
  halt.op = riscsim::Op::kHalt;
  app.program.code.push_back(halt);
  EXPECT_THROW(run_binary(app, rts), std::runtime_error);
}

TEST(IssBridge, TrigWithoutCoprocessorThrows) {
  riscsim::Cpu cpu;
  const auto program = riscsim::assemble("trig 0, 8\nhalt\n");
  EXPECT_THROW(cpu.run(program), std::runtime_error);
}

TEST(IssBridge, CoprocessorOpsAssembleAndDisassemble) {
  const auto program = riscsim::assemble(R"(
    trig  64, 24
    wait  1000
    kexec 3
    halt
  )");
  ASSERT_EQ(program.code.size(), 4u);
  EXPECT_EQ(program.code[0].imm, 64);
  EXPECT_EQ(program.code[0].target, 24u);
  EXPECT_EQ(program.code[1].imm, 1000);
  EXPECT_EQ(program.code[2].imm, 3);
  const auto back = riscsim::assemble(riscsim::disassemble(program));
  EXPECT_EQ(back.code.size(), program.code.size());
  EXPECT_EQ(back.code[0].target, 24u);
}

}  // namespace
}  // namespace mrts
