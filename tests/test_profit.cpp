// Unit tests for the profit function (Eqs. 1-4): hand-computed scenarios and
// parameterized property sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "rts/profit.h"

namespace mrts {
namespace {

/// ISE with sw latency 1000, two data paths, intermediate latency 400, full
/// latency 100.
IseVariant make_ise(std::vector<Cycles> latency_after = {1000, 400, 100}) {
  IseVariant v;
  v.id = IseId{0};
  v.kernel = KernelId{0};
  v.name = "test";
  v.data_paths.assign(latency_after.size() - 1, DataPathId{0});
  v.latency_after = std::move(latency_after);
  return v;
}

TEST(Pif, MatchesEquationOne) {
  // pif = sw*e / (rec + hw*e)
  EXPECT_DOUBLE_EQ(performance_improvement_factor(1000, 100, 0, 10.0),
                   10.0);  // no reconfiguration -> pure speedup
  EXPECT_DOUBLE_EQ(performance_improvement_factor(1000, 100, 9000, 10.0),
                   1000.0 * 10 / (9000 + 100 * 10));
  EXPECT_DOUBLE_EQ(performance_improvement_factor(1000, 100, 0, 0.0), 0.0);
}

TEST(Pif, ApproachesAsymptoteForLargeE) {
  const double pif = performance_improvement_factor(1000, 100, 960'000, 1e9);
  EXPECT_NEAR(pif, 10.0, 0.01);
}

TEST(Profit, AllReconfiguredBeforeFirstExecution) {
  // recT(2) <= tf: every execution uses the full ISE.
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 50;
  in.time_to_first = 1000;
  in.time_between = 10;
  in.ready_rel = {100, 500};  // both well before tf
  const ProfitResult r = compute_profit(in);
  EXPECT_DOUBLE_EQ(r.noe_sum, 0.0);
  EXPECT_DOUBLE_EQ(r.risc_executions, 0.0);
  EXPECT_DOUBLE_EQ(r.full_executions, 50.0);
  EXPECT_DOUBLE_EQ(r.profit, 50.0 * (1000 - 100));
}

TEST(Profit, IntermediateWindowMatchesEquationThree) {
  // tf = 0; dp1 ready at 4100, dp2 at 8200. RISC window [0, 4100):
  // NoE_RM = 4100 / (1000+25) = 4. Intermediate window [4100, 8200):
  // NoE(1) = 4100 / (400+25) ~ 9.647.
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 100;
  in.time_to_first = 0;
  in.time_between = 25;
  in.ready_rel = {4100, 8200};
  const ProfitResult r = compute_profit(in);
  EXPECT_NEAR(r.risc_executions, 4.0, 1e-9);
  ASSERT_EQ(r.noe.size(), 1u);
  EXPECT_NEAR(r.noe[0], 4100.0 / 425.0, 1e-9);
  EXPECT_NEAR(r.full_executions, 100.0 - 4.0 - 4100.0 / 425.0, 1e-9);
  const double expected_profit =
      (4100.0 / 425.0) * (1000 - 400) + r.full_executions * (1000 - 100);
  EXPECT_NEAR(r.profit, expected_profit, 1e-6);
}

TEST(Profit, TfInsideIntermediateWindow) {
  // recT(1)=1000 <= tf=2000 <= recT(2)=5000:
  // NoE(1) = (5000-2000)/(400+0) = 7.5; no RISC executions.
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 20;
  in.time_to_first = 2000;
  in.time_between = 0;
  in.ready_rel = {1000, 5000};
  const ProfitResult r = compute_profit(in);
  EXPECT_DOUBLE_EQ(r.risc_executions, 0.0);
  EXPECT_DOUBLE_EQ(r.noe[0], 7.5);
  EXPECT_DOUBLE_EQ(r.full_executions, 12.5);
}

TEST(Profit, NoESumNeverExceedsExpectedExecutions) {
  // Tiny e: the windows would allow many executions but only e happen.
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 3;
  in.time_to_first = 0;
  in.time_between = 0;
  in.ready_rel = {1'000'000, 2'000'000};
  const ProfitResult r = compute_profit(in);
  EXPECT_LE(r.noe_sum + r.risc_executions + r.full_executions, 3.0 + 1e-9);
  // All executions happen before anything is configured: zero profit.
  EXPECT_DOUBLE_EQ(r.profit, 0.0);
}

TEST(Profit, NonMonotoneReadyTimesUsePrefixMaximum) {
  // Second data path "ready" before the first (e.g. reused instance): the
  // intermediate level still waits for the first.
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 10;
  in.time_to_first = 0;
  in.time_between = 0;
  in.ready_rel = {5000, 100};
  const ProfitResult r = compute_profit(in);
  // recT(1) = 5000, recT(2) = 5000: no intermediate window at all.
  EXPECT_DOUBLE_EQ(r.noe_sum, 0.0);
  EXPECT_GT(r.full_executions, 0.0);
}

TEST(Profit, InstantAvailabilityYieldsMaximumProfit) {
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 42;
  in.time_to_first = 0;
  in.time_between = 10;
  in.ready_rel = {0, 0};
  const ProfitResult r = compute_profit(in);
  EXPECT_DOUBLE_EQ(r.profit, 42.0 * 900.0);
}

TEST(Profit, RejectsMalformedInputs) {
  ProfitInputs in;
  EXPECT_THROW(compute_profit(in), std::invalid_argument);
  const IseVariant ise = make_ise();
  in.ise = &ise;
  in.ready_rel = {1};  // wrong size
  EXPECT_THROW(compute_profit(in), std::invalid_argument);
}

TEST(Profit, SingleDataPathIseHasNoIntermediates) {
  const IseVariant ise = make_ise({1000, 250});
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 10;
  in.time_to_first = 0;
  in.time_between = 50;
  in.ready_rel = {2100};
  const ProfitResult r = compute_profit(in);
  EXPECT_TRUE(r.noe.empty());
  // NoE_RM = 2100/(1000+50) = 2 executions in RISC mode.
  EXPECT_NEAR(r.risc_executions, 2.0, 1e-9);
  EXPECT_NEAR(r.profit, 8.0 * 750.0, 1e-6);
}

TEST(ProfitModel, LiteralEq4OvervaluesSlowLoaders) {
  // All executions happen before the first data path arrives. The corrected
  // model yields zero profit; the literal Eq. 4 books them into the first
  // intermediate window and credits the ISE with every execution at the
  // intermediate speedup — the failure mode the NoE_RM term fixes.
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 5;
  in.time_to_first = 0;
  in.time_between = 0;
  in.ready_rel = {2'000'000, 4'000'000};
  EXPECT_DOUBLE_EQ(compute_profit(in).profit, 0.0);

  in.model.account_risc_window = false;
  EXPECT_DOUBLE_EQ(compute_profit(in).profit, 5.0 * (1000.0 - 400.0));
}

TEST(ProfitModel, TbTermShrinksIntermediateWindows) {
  // Without tb the window [recT(1), recT(2)) appears to hold more
  // executions, inflating the intermediate share.
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = 1000;
  in.time_to_first = 0;
  in.time_between = 400;
  in.ready_rel = {0, 400'000};
  const double with_tb = compute_profit(in).noe_sum;
  in.model.include_tb = false;
  const double without_tb = compute_profit(in).noe_sum;
  EXPECT_GT(without_tb, with_tb);
}

// --- property sweeps --------------------------------------------------------

struct ProfitSweepParam {
  double e;
  Cycles tf;
  Cycles tb;
  Cycles ready1;
  Cycles ready2;
};

class ProfitProperties : public ::testing::TestWithParam<ProfitSweepParam> {};

TEST_P(ProfitProperties, InvariantsHold) {
  const auto p = GetParam();
  const IseVariant ise = make_ise();
  ProfitInputs in;
  in.ise = &ise;
  in.expected_executions = p.e;
  in.time_to_first = p.tf;
  in.time_between = p.tb;
  in.ready_rel = {p.ready1, p.ready2};
  const ProfitResult r = compute_profit(in);

  // Profit is non-negative and bounded by the ideal e * max saving.
  EXPECT_GE(r.profit, 0.0);
  EXPECT_LE(r.profit, p.e * 900.0 + 1e-6);
  // Execution-count bookkeeping is conserved.
  EXPECT_NEAR(r.risc_executions + r.noe_sum + r.full_executions, p.e, 1e-6);
  EXPECT_GE(r.full_executions, -1e-9);

  // Monotonicity in availability: making data paths ready earlier can only
  // help (or tie).
  ProfitInputs earlier = in;
  earlier.ready_rel = {p.ready1 / 2, p.ready2 / 2};
  EXPECT_GE(compute_profit(earlier).profit, r.profit - 1e-6);

  // Monotonicity in e.
  ProfitInputs more = in;
  more.expected_executions = p.e * 2;
  EXPECT_GE(compute_profit(more).profit, r.profit - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProfitProperties,
    ::testing::Values(
        ProfitSweepParam{10, 0, 0, 0, 0},
        ProfitSweepParam{10, 100, 20, 500, 1000},
        ProfitSweepParam{1000, 0, 50, 480'000, 960'000},
        ProfitSweepParam{5, 1'000'000, 100, 480'000, 960'000},
        ProfitSweepParam{0, 0, 0, 100, 200},
        ProfitSweepParam{2500, 400, 30, 60, 480'000},
        ProfitSweepParam{100, 50'000, 10, 60, 120},
        ProfitSweepParam{7, 0, 1'000'000, 480'000, 960'000}));

}  // namespace
}  // namespace mrts
