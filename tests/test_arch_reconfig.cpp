// Unit tests for the reconfiguration ports: FIFO serialization, cancellation
// of not-yet-started jobs and queue re-timing.

#include <gtest/gtest.h>

#include "arch/reconfig_controller.h"

namespace mrts {
namespace {

TEST(ReconfigPort, JobsSerializeBackToBack) {
  ReconfigPort port;
  const auto& j0 = port.enqueue(DataPathId{1}, 0, 100, 10);
  EXPECT_EQ(j0.starts_at, 10u);
  EXPECT_EQ(j0.completes_at, 110u);
  const auto& j1 = port.enqueue(DataPathId{2}, 1, 50, 10);
  EXPECT_EQ(j1.starts_at, 110u);
  EXPECT_EQ(j1.completes_at, 160u);
  EXPECT_EQ(port.busy_until(10), 160u);
}

TEST(ReconfigPort, LateEnqueueStartsAtNow) {
  ReconfigPort port;
  port.enqueue(DataPathId{1}, 0, 100, 0);
  const auto& j = port.enqueue(DataPathId{2}, 1, 10, 500);
  EXPECT_EQ(j.starts_at, 500u);
  EXPECT_EQ(j.completes_at, 510u);
}

TEST(ReconfigPort, BusyUntilIdlePortIsNow) {
  ReconfigPort port;
  EXPECT_EQ(port.busy_until(42), 42u);
}

TEST(ReconfigPort, CancelPendingRemovesAndRetimes) {
  ReconfigPort port;
  port.enqueue(DataPathId{1}, 0, 100, 0);   // running at t=50
  port.enqueue(DataPathId{2}, 1, 100, 0);   // queued
  port.enqueue(DataPathId{3}, 2, 100, 0);   // queued
  // Cancel the middle job at t=50 (it has not started).
  const std::size_t cancelled = port.cancel_pending(
      50, [](const ReconfigJob& j) { return j.dp == DataPathId{2}; });
  EXPECT_EQ(cancelled, 1u);
  // Job 3 now starts right after job 1 completes.
  const auto pending = port.pending(50);
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[1].dp, DataPathId{3});
  EXPECT_EQ(pending[1].starts_at, 100u);
  EXPECT_EQ(pending[1].completes_at, 200u);
}

TEST(ReconfigPort, CannotCancelStartedJob) {
  ReconfigPort port;
  port.enqueue(DataPathId{1}, 0, 100, 0);
  const std::size_t cancelled =
      port.cancel_pending(50, [](const ReconfigJob&) { return true; });
  EXPECT_EQ(cancelled, 0u);
  EXPECT_EQ(port.busy_until(50), 100u);
}

// Pins the header's boundary contract: a job whose starts_at equals `now`
// has NOT begun streaming yet and must be cancellable. (A strict `<=`
// comparison in cancel_pending would silently keep such jobs alive.)
TEST(ReconfigPort, CancelAtExactStartBoundary) {
  ReconfigPort port;
  port.enqueue(DataPathId{1}, 0, 100, 0);  // occupies [0, 100)
  port.enqueue(DataPathId{2}, 1, 50, 0);   // queued: starts exactly at 100
  const std::size_t cancelled = port.cancel_pending(
      100, [](const ReconfigJob& j) { return j.dp == DataPathId{2}; });
  EXPECT_EQ(cancelled, 1u);
  EXPECT_TRUE(port.pending(100).empty());
  // And one cycle later the same job would have started: not cancellable.
  port.enqueue(DataPathId{3}, 2, 50, 100);  // occupies [100, 150)
  EXPECT_EQ(port.cancel_pending(
                101, [](const ReconfigJob& j) { return j.dp == DataPathId{3}; }),
            0u);
}

TEST(ReconfigJob, StartedBeforeBoundary) {
  ReconfigPort port;
  const ReconfigJob& job = port.enqueue(DataPathId{1}, 0, 100, 10);
  EXPECT_FALSE(job.started_before(10));  // starts_at == now: not yet started
  EXPECT_TRUE(job.started_before(11));
}

TEST(ReconfigPort, CompletionLookup) {
  ReconfigPort port;
  const auto id = port.enqueue(DataPathId{1}, 0, 10, 0).id;
  ASSERT_TRUE(port.completion(id).has_value());
  EXPECT_EQ(*port.completion(id), 10u);
  EXPECT_FALSE(port.completion(id + 1).has_value());
}

TEST(ReconfigPort, CompactDropsFinishedJobs) {
  ReconfigPort port;
  port.enqueue(DataPathId{1}, 0, 10, 0);
  port.enqueue(DataPathId{2}, 1, 10, 0);
  port.compact(100);
  EXPECT_TRUE(port.pending(100).empty());
  // Busy-until falls back to `now` once history is compacted.
  EXPECT_EQ(port.busy_until(100), 100u);
}

TEST(ReconfigPort, TotalBusyAccountsCancellations) {
  ReconfigPort port;
  port.enqueue(DataPathId{1}, 0, 100, 0);
  port.enqueue(DataPathId{2}, 1, 50, 0);
  EXPECT_EQ(port.total_busy_cycles(), 150u);
  port.cancel_pending(0, [](const ReconfigJob& j) { return j.dp == DataPathId{2}; });
  EXPECT_EQ(port.total_busy_cycles(), 100u);
}

TEST(ReconfigController, PortsAreIndependent) {
  ReconfigController ctrl;
  ctrl.fg_port().enqueue(DataPathId{1}, 0, 480'000, 0);
  const auto& cg_job = ctrl.cg_port().enqueue(DataPathId{2}, 0, 60, 0);
  // The CG load does not wait behind the FG bitstream.
  EXPECT_EQ(cg_job.completes_at, 60u);
}

}  // namespace
}  // namespace mrts
