// Unit tests for the Monitoring & Prediction Unit: forecast refinement via
// error back-propagation.

#include <gtest/gtest.h>

#include "rts/mpu.h"
#include "util/counters.h"
#include "util/trace.h"

namespace mrts {
namespace {

TriggerInstruction programmed_trigger() {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{1};
  ti.entries.push_back({KernelId{0}, 100.0, 1000, 50});
  return ti;
}

BlockObservation observation(double e, Cycles tf, Cycles tb) {
  BlockObservation obs;
  obs.functional_block = FunctionalBlockId{1};
  obs.kernels.push_back({KernelId{0}, e, tf, tb});
  return obs;
}

TEST(Mpu, PassesThroughWithoutObservations) {
  Mpu mpu;
  const TriggerInstruction refined = mpu.refine(programmed_trigger());
  EXPECT_DOUBLE_EQ(refined.entries[0].expected_executions, 100.0);
  EXPECT_EQ(refined.entries[0].time_to_first, 1000u);
}

TEST(Mpu, FirstObservationSeedsForecast) {
  Mpu mpu(Mpu::Config{true, 0.5});
  mpu.observe(observation(400.0, 2000, 80));
  const TriggerInstruction refined = mpu.refine(programmed_trigger());
  EXPECT_DOUBLE_EQ(refined.entries[0].expected_executions, 400.0);
  EXPECT_EQ(refined.entries[0].time_to_first, 2000u);
  EXPECT_EQ(refined.entries[0].time_between, 80u);
}

TEST(Mpu, BackPropagationBlendsObservations) {
  Mpu mpu(Mpu::Config{true, 0.5});
  mpu.observe(observation(100.0, 0, 0));
  mpu.observe(observation(200.0, 0, 0));
  // prediction = 100 + 0.5*(200-100) = 150.
  const auto forecast = mpu.forecast(FunctionalBlockId{1}, KernelId{0});
  ASSERT_TRUE(forecast.has_value());
  EXPECT_DOUBLE_EQ(forecast->expected_executions, 150.0);
}

TEST(Mpu, TracksChangingWorkload) {
  Mpu mpu(Mpu::Config{true, 0.5});
  for (int i = 0; i < 20; ++i) mpu.observe(observation(1000.0, 500, 20));
  const TriggerInstruction refined = mpu.refine(programmed_trigger());
  EXPECT_NEAR(refined.entries[0].expected_executions, 1000.0, 1.0);
  // Workload halves; the forecast follows within a few frames.
  for (int i = 0; i < 6; ++i) mpu.observe(observation(500.0, 500, 20));
  const TriggerInstruction after = mpu.refine(programmed_trigger());
  EXPECT_NEAR(after.entries[0].expected_executions, 500.0, 20.0);
}

TEST(Mpu, DisabledMpuNeverRefines) {
  Mpu mpu(Mpu::Config{false, 0.5});
  mpu.observe(observation(999.0, 9, 9));
  const TriggerInstruction refined = mpu.refine(programmed_trigger());
  EXPECT_DOUBLE_EQ(refined.entries[0].expected_executions, 100.0);
  EXPECT_EQ(mpu.observations(), 0u);
  EXPECT_FALSE(mpu.forecast(FunctionalBlockId{1}, KernelId{0}).has_value());
}

TEST(Mpu, DisabledRefineIsExactPassThroughFieldByField) {
  // With Config::enabled == false, refine must return the programmed
  // trigger unchanged even after many observations, and a disabled unit
  // must stay silent on an attached flight recorder / counter registry.
  Mpu mpu(Mpu::Config{false, 0.9});
  TraceRecorder recorder;
  CounterRegistry counters;
  mpu.attach_observability(&recorder, &counters);
  for (int i = 0; i < 4; ++i) mpu.observe(observation(999.0, 9, 9), 1234);

  const TriggerInstruction programmed = programmed_trigger();
  const TriggerInstruction refined = mpu.refine(programmed);
  EXPECT_EQ(refined.functional_block, programmed.functional_block);
  ASSERT_EQ(refined.entries.size(), programmed.entries.size());
  EXPECT_EQ(refined.entries[0].kernel, programmed.entries[0].kernel);
  EXPECT_DOUBLE_EQ(refined.entries[0].expected_executions,
                   programmed.entries[0].expected_executions);
  EXPECT_EQ(refined.entries[0].time_to_first,
            programmed.entries[0].time_to_first);
  EXPECT_EQ(refined.entries[0].time_between,
            programmed.entries[0].time_between);

  EXPECT_TRUE(recorder.empty());
  EXPECT_TRUE(counters.empty());
}

TEST(Mpu, ForecastsAreScopedPerBlockAndKernel) {
  Mpu mpu;
  mpu.observe(observation(400.0, 0, 0));
  // Same kernel id in a different functional block is untouched.
  TriggerInstruction other = programmed_trigger();
  other.functional_block = FunctionalBlockId{2};
  const TriggerInstruction refined = mpu.refine(other);
  EXPECT_DOUBLE_EQ(refined.entries[0].expected_executions, 100.0);
  // Unknown kernel in the observed block is untouched, too.
  EXPECT_FALSE(mpu.forecast(FunctionalBlockId{1}, KernelId{7}).has_value());
}

TEST(Mpu, ResetForgetsEverything) {
  Mpu mpu;
  mpu.observe(observation(400.0, 0, 0));
  mpu.reset();
  EXPECT_EQ(mpu.observations(), 0u);
  const TriggerInstruction refined = mpu.refine(programmed_trigger());
  EXPECT_DOUBLE_EQ(refined.entries[0].expected_executions, 100.0);
}

TEST(Mpu, ObservationCounterCountsKernels) {
  Mpu mpu;
  BlockObservation obs;
  obs.functional_block = FunctionalBlockId{1};
  obs.kernels.push_back({KernelId{0}, 1.0, 0, 0});
  obs.kernels.push_back({KernelId{1}, 2.0, 0, 0});
  mpu.observe(obs);
  EXPECT_EQ(mpu.observations(), 2u);
}

}  // namespace
}  // namespace mrts
