// Unit tests for the FG (PRC) and CG (context) fabric placement models.

#include <gtest/gtest.h>

#include "arch/cg_fabric.h"
#include "arch/fg_fabric.h"

namespace mrts {
namespace {

TEST(FgFabric, StartsEmpty) {
  FgFabric fg(4);
  EXPECT_EQ(fg.num_prcs(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_TRUE(fg.prc(i).empty());
    EXPECT_FALSE(fg.prc(i).usable_at(1'000'000));
  }
}

TEST(FgFabric, PlaceAndUsability) {
  FgFabric fg(2);
  fg.place(0, DataPathId{7}, 100);
  EXPECT_FALSE(fg.prc(0).usable_at(99));
  EXPECT_TRUE(fg.prc(0).usable_at(100));
  EXPECT_EQ(fg.prc(0).occupant, DataPathId{7});
}

TEST(FgFabric, EvictClears) {
  FgFabric fg(1);
  fg.place(0, DataPathId{1}, 0);
  fg.evict(0);
  EXPECT_TRUE(fg.prc(0).empty());
}

TEST(FgFabric, FindInstanceRespectsClaimsAndTime) {
  FgFabric fg(3);
  fg.place(0, DataPathId{5}, 50);
  fg.place(1, DataPathId{5}, 10);
  std::vector<bool> claimed(3, false);
  // At t=20 only PRC 1 is usable.
  auto found = fg.find_instance(DataPathId{5}, 20, claimed);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 1u);
  claimed[1] = true;
  EXPECT_FALSE(fg.find_instance(DataPathId{5}, 20, claimed).has_value());
  EXPECT_TRUE(fg.find_instance(DataPathId{5}, 60, claimed).has_value());
}

TEST(FgFabric, VictimPrefersEmptyThenOldest) {
  FgFabric fg(3);
  fg.place(0, DataPathId{1}, 100);
  fg.place(2, DataPathId{2}, 50);
  std::vector<bool> claimed(3, false);
  auto victim = fg.find_victim(claimed);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);  // the empty one
  fg.place(1, DataPathId{3}, 200);
  victim = fg.find_victim(claimed);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);  // oldest ready time
  claimed[2] = true;
  victim = fg.find_victim(claimed);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0u);
}

TEST(FgFabric, InstanceReadyTimesSorted) {
  FgFabric fg(3);
  fg.place(0, DataPathId{9}, 300);
  fg.place(1, DataPathId{9}, 100);
  fg.place(2, DataPathId{8}, 50);
  const auto times = fg.instance_ready_times(DataPathId{9});
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 100u);
  EXPECT_EQ(times[1], 300u);
}

TEST(FgFabric, OutOfRangeThrows) {
  FgFabric fg(1);
  EXPECT_THROW(fg.prc(1), std::out_of_range);
  EXPECT_THROW(fg.place(1, DataPathId{0}, 0), std::out_of_range);
  EXPECT_THROW(fg.evict(1), std::out_of_range);
}

TEST(CgFabric, ParamsMatchPaper) {
  CgFabric cg;
  EXPECT_EQ(cg.params().instruction_bits, 80u);
  EXPECT_EQ(cg.params().context_memory_instructions, 32u);
  EXPECT_EQ(cg.params().context_switch_cycles, 2u);
  EXPECT_EQ(cg.params().alu_op_cycles, 1u);
  EXPECT_EQ(cg.params().mul_cycles, 2u);
  EXPECT_EQ(cg.params().div_cycles, 10u);
  EXPECT_EQ(cg.params().register_files, 2u);
  EXPECT_EQ(cg.params().registers_per_file, 32u);
  EXPECT_EQ(cg.params().inter_fabric_hop_cycles, 2u);
}

TEST(CgFabric, LoadIntoEmptySlots) {
  CgFabric cg;
  const unsigned s0 = cg.load(DataPathId{1}, 10);
  const unsigned s1 = cg.load(DataPathId{2}, 20);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(cg.resident_count(), 2u);
  EXPECT_TRUE(cg.holds(DataPathId{1}, 10));
  EXPECT_FALSE(cg.holds(DataPathId{1}, 9));
}

TEST(CgFabric, ReloadingSameDataPathReusesSlot) {
  CgFabric cg;
  const unsigned s0 = cg.load(DataPathId{1}, 100);
  const unsigned s1 = cg.load(DataPathId{1}, 50);
  EXPECT_EQ(s0, s1);
  EXPECT_EQ(cg.resident_count(), 1u);
  // Ready time keeps the earlier value.
  EXPECT_TRUE(cg.holds(DataPathId{1}, 50));
}

TEST(CgFabric, EvictsOldestWhenFull) {
  CgFabricParams params;
  params.max_resident_contexts = 2;
  CgFabric cg(params);
  cg.load(DataPathId{1}, 100);
  cg.load(DataPathId{2}, 200);
  cg.load(DataPathId{3}, 300);  // evicts dp1 (oldest ready)
  EXPECT_EQ(cg.resident_count(), 2u);
  EXPECT_FALSE(cg.slot_of(DataPathId{1}).has_value());
  EXPECT_TRUE(cg.slot_of(DataPathId{2}).has_value());
  EXPECT_TRUE(cg.slot_of(DataPathId{3}).has_value());
}

TEST(CgFabric, ActivationCostsTwoCyclesOnceThenFree) {
  CgFabric cg;
  const unsigned s0 = cg.load(DataPathId{1}, 0);
  const unsigned s1 = cg.load(DataPathId{2}, 0);
  EXPECT_EQ(cg.activate(s0), 2u);
  EXPECT_EQ(cg.activate(s0), 0u);  // already active
  EXPECT_EQ(cg.activate(s1), 2u);
  EXPECT_EQ(cg.activate(s0), 2u);
  ASSERT_TRUE(cg.active_slot().has_value());
  EXPECT_EQ(*cg.active_slot(), s0);
}

TEST(CgFabric, ActivateEmptySlotThrows) {
  CgFabric cg;
  EXPECT_THROW(cg.activate(0), std::invalid_argument);
  EXPECT_THROW(cg.activate(99), std::out_of_range);
}

TEST(CgFabric, ClearRemovesEverything) {
  CgFabric cg;
  cg.load(DataPathId{1}, 0);
  cg.clear();
  EXPECT_EQ(cg.resident_count(), 0u);
  EXPECT_FALSE(cg.active_slot().has_value());
}

TEST(CgFabric, ZeroContextCapacityRejected) {
  CgFabricParams params;
  params.max_resident_contexts = 0;
  EXPECT_THROW(CgFabric fabric(params), std::invalid_argument);
}

}  // namespace
}  // namespace mrts
