// Unit tests for src/util: RNG, statistics, CSV/table writers and the
// cycle-conversion helpers in types.h.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <set>

#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/types.h"

namespace mrts {
namespace {

TEST(Types, ClockConstantsMatchPaper) {
  // Section 5.1: core/CG at 400 MHz, FG at 100 MHz.
  EXPECT_DOUBLE_EQ(kCoreClockHz, 400.0e6);
  EXPECT_DOUBLE_EQ(kFgClockHz, 100.0e6);
  EXPECT_EQ(kFgClockRatio, 4u);
}

TEST(Types, MsToCyclesRoundTrip) {
  EXPECT_EQ(ms_to_cycles(1.0), 400'000u);
  EXPECT_EQ(us_to_cycles(1.0), 400u);
  EXPECT_NEAR(cycles_to_ms(400'000), 1.0, 1e-12);
}

TEST(Types, FgReconfigBandwidthMatchesPaper) {
  // 67584 KB/s: streaming ~83 KB takes ~1.2 ms = ~480k core cycles.
  const Cycles c = fg_reconfig_cycles_for_bytes(83047);
  EXPECT_NEAR(static_cast<double>(c), 480'000.0, 2'000.0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowIsUnbiasedEnough) {
  Rng rng(99);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Ewma, BackPropagationMovesTowardObservation) {
  Ewma e(0.5, 100.0);
  e.observe(200.0);
  EXPECT_DOUBLE_EQ(e.prediction(), 150.0);
  e.observe(200.0);
  EXPECT_DOUBLE_EQ(e.prediction(), 175.0);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0, 0.0);
  e.observe(42.0);
  EXPECT_DOUBLE_EQ(e.prediction(), 42.0);
}

TEST(Ewma, ConvergesToConstantSignal) {
  Ewma e(0.3, 0.0);
  for (int i = 0; i < 100; ++i) e.observe(10.0);
  EXPECT_NEAR(e.prediction(), 10.0, 1e-6);
}

TEST(Ewma, AlphaZeroClampsToTinyGain) {
  // alpha <= 0 would freeze the forecast forever; the constructor clamps it
  // to a tiny positive gain instead, so the first observation still nudges
  // the prediction (by alpha * error) rather than being discarded.
  Ewma e(0.0, 100.0);
  EXPECT_DOUBLE_EQ(e.alpha(), 1e-6);
  e.observe(200.0);
  EXPECT_NEAR(e.prediction(), 100.0001, 1e-9);
  EXPECT_EQ(e.observations(), 1u);
}

TEST(Ewma, AlphaOneFirstObservationReplacesInitial) {
  // alpha == 1 is pure tracking: the very first observation overwrites
  // whatever initial prediction the forecast was seeded with.
  Ewma e(1.0, 12345.0);
  EXPECT_DOUBLE_EQ(e.alpha(), 1.0);
  e.observe(-7.5);
  EXPECT_DOUBLE_EQ(e.prediction(), -7.5);
}

TEST(Ewma, AlphaAboveOneClampsToOne) {
  // Gains above 1 would overshoot (oscillate around the signal); they clamp
  // to exact tracking.
  Ewma e(2.5, 10.0);
  EXPECT_DOUBLE_EQ(e.alpha(), 1.0);
  e.observe(20.0);
  EXPECT_DOUBLE_EQ(e.prediction(), 20.0);
}

TEST(Logging, FormatLogLinePinsLayout) {
  // 1234567890 s since the epoch = 2009-02-13 23:31:30 UTC. The format is
  // part of the logger's contract: timestamp (UTC, millisecond), worker
  // tag, level, component, message.
  EXPECT_EQ(format_log_line(1234567890123, "w03", LogLevel::kWarn, "ecu",
                            "impl switched"),
            "[2009-02-13 23:31:30.123] [w03] [WARN] ecu: impl switched");
  EXPECT_EQ(format_log_line(45, "w00", LogLevel::kError, "mpu", ""),
            "[1970-01-01 00:00:00.045] [w00] [ERROR] mpu: ");
}

TEST(Logging, ThreadTagIsStablePerThread) {
  const std::string& tag = log_thread_tag();
  ASSERT_EQ(tag.size(), 3u);
  EXPECT_EQ(tag[0], 'w');
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(tag[1])));
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(tag[2])));
  // Same thread -> same tag object, every time.
  EXPECT_EQ(&tag, &log_thread_tag());
}

TEST(Means, GeometricAndArithmetic) {
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(arithmetic_mean({2.0, 8.0}), 5.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({1.0, 0.0}), 0.0);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesCarriageReturns) {
  // RFC 4180: any cell containing CR (not just LF) must be quoted, or a
  // bare \r corrupts the row structure for strict readers.
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(CsvWriter::escape("a\r\nb"), "\"a\r\nb\"");
  EXPECT_EQ(CsvWriter::escape("\r"), "\"\r\"");
}

TEST(Csv, InMemoryRows) {
  CsvWriter csv;
  csv.write_header({"a", "b"});
  csv.write_values(1, 2.5);
  EXPECT_EQ(csv.str(), "a,b\n1,2.5\n");
}

TEST(Csv, IntegralDoublesKeepEveryDigit) {
  // Bare %.10g silently rounded integral cycle counts above ~2^33 to ten
  // significant digits. Integral doubles are exact up to 2^53 and must
  // round-trip byte-for-byte through the CSV layer.
  EXPECT_EQ(CsvWriter::to_cell(1099511627777.0), "1099511627777");  // 2^40+1
  EXPECT_EQ(CsvWriter::to_cell(9007199254740991.0), "9007199254740991");
  EXPECT_EQ(CsvWriter::to_cell(0.0), "0");
  EXPECT_EQ(CsvWriter::to_cell(-42.0), "-42");
  // Non-integral values keep the historical %.10g form — the committed
  // figure CSVs depend on its rounding (e.g. fig11's fairness column).
  EXPECT_EQ(CsvWriter::to_cell(2.5), "2.5");
  EXPECT_EQ(CsvWriter::to_cell(3.0596940034), "3.059694003");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_values("x", 1);
  t.add_values("longer", 23);
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_mcycles(12'340'000), "12.34");
}

}  // namespace
}  // namespace mrts
