// Tests for multi-task fabric sharing: several MRts instances bound to one
// FabricManager, time-sliced on the core (Section 1's "fabric shared among
// various tasks" scenario).

#include <gtest/gtest.h>

#include "baselines/risc_only_rts.h"
#include "isa/ise_builder.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/multi_app.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

/// A small application: one functional block repeated `blocks` times, one
/// kernel, enough executions per block to amortize its ISEs.
struct SmallApp {
  IseLibrary library;
  ApplicationTrace trace;
  KernelId kernel;
};

SmallApp make_app(const std::string& kernel_name, unsigned blocks,
                  std::uint64_t seed) {
  SmallApp app;
  IseBuildSpec spec;
  spec.kernel_name = kernel_name;
  spec.sw_latency = 700;
  spec.control_fraction = 0.4;
  spec.fg_data_path_names = {kernel_name + "_ctrl_fg", kernel_name + "_dp_fg"};
  spec.cg_data_path_names = {kernel_name + "_mac_cg"};
  spec.fg_control_dps = 1;
  spec.cg_data_dps = 1;
  app.kernel = build_kernel_ises(app.library, spec);

  Rng rng(seed);
  for (unsigned b = 0; b < blocks; ++b) {
    FunctionalBlockInstance inst = make_block_instance(
        FunctionalBlockId{0}, /*macroblocks=*/400,
        {{app.kernel, 8.0, 25, 0.1}}, /*entry_gap=*/200, /*tail_gap=*/200,
        rng);
    stamp_programmed_trigger(inst, app.library);
    app.trace.blocks.push_back(std::move(inst));
  }
  return app;
}

TEST(MultiTask, SharedFabricConstructorWiring) {
  const SmallApp app = make_app("K", 2, 1);
  FabricManager shared(2, 2, &app.library.data_paths());
  MRts rts(app.library, shared);
  EXPECT_FALSE(rts.owns_fabric());
  EXPECT_EQ(&rts.fabric(), &shared);

  MRts owning(app.library, 2, 2);
  EXPECT_TRUE(owning.owns_fabric());
}

TEST(MultiTask, ResetLeavesSharedFabricUntouched) {
  const SmallApp app = make_app("K", 2, 1);
  FabricManager shared(2, 2, &app.library.data_paths());
  MRts rts(app.library, shared);
  rts.on_trigger(app.trace.blocks[0].programmed, 0);
  const FabricUsage before = shared.usage();
  EXPECT_GT(before.reserved_prcs + before.reserved_cg, 0u);
  rts.reset();
  const FabricUsage after = shared.usage();
  EXPECT_EQ(after.reserved_prcs, before.reserved_prcs);
  EXPECT_EQ(after.reserved_cg, before.reserved_cg);
}

TEST(MultiTask, RoundRobinInterleavesBlocks) {
  SmallApp a = make_app("A", 3, 1);
  SmallApp b = make_app("B", 2, 2);
  RiscOnlyRts rts_a(a.library);
  RiscOnlyRts rts_b(b.library);
  const TimeSlicedResult r = run_time_sliced(
      {{"A", &rts_a, &a.trace}, {"B", &rts_b, &b.trace}});
  ASSERT_EQ(r.tasks.size(), 2u);
  EXPECT_EQ(r.tasks[0].block_cycles.size(), 3u);
  EXPECT_EQ(r.tasks[1].block_cycles.size(), 2u);
  // The timeline is exactly the sum of all block times.
  EXPECT_EQ(r.total_cycles, r.tasks[0].active_cycles + r.tasks[1].active_cycles);
  // A has one more block than B, so A finishes last.
  EXPECT_GT(r.tasks[0].finished_at, r.tasks[1].finished_at);
}

TEST(MultiTask, SharedFabricContentionSlowsTasksButBeatsRisc) {
  // Two tasks with *different* kernels fight for a small fabric. Each must
  // still beat RISC mode, but be slower than having the fabric alone.
  SmallApp a = make_app("A", 6, 1);
  SmallApp b = make_app("B", 6, 2);

  // Alone on the fabric:
  MRts alone_a(a.library, 1, 1);
  const Cycles alone_cycles = run_application(alone_a, a.trace).total_cycles;

  // RISC reference:
  RiscOnlyRts risc_a(a.library);
  const Cycles risc_cycles = run_application(risc_a, a.trace).total_cycles;

  // Sharing: both tasks' libraries must live in one data-path table for a
  // shared FabricManager, so build a combined library.
  IseLibrary combined;
  IseBuildSpec spec_a;
  spec_a.kernel_name = "A";
  spec_a.sw_latency = 700;
  spec_a.control_fraction = 0.4;
  spec_a.fg_data_path_names = {"A_ctrl_fg", "A_dp_fg"};
  spec_a.cg_data_path_names = {"A_mac_cg"};
  spec_a.fg_control_dps = 1;
  spec_a.cg_data_dps = 1;
  build_kernel_ises(combined, spec_a);
  IseBuildSpec spec_b = spec_a;
  spec_b.kernel_name = "B";
  spec_b.fg_data_path_names = {"B_ctrl_fg", "B_dp_fg"};
  spec_b.cg_data_path_names = {"B_mac_cg"};
  build_kernel_ises(combined, spec_b);

  // Rebuild both traces against the combined library (kernel ids 0 and 1).
  auto rebuild = [&combined](const char* name, std::uint64_t seed) {
    ApplicationTrace trace;
    Rng rng(seed);
    const KernelId k = combined.find_kernel(name);
    for (unsigned blk = 0; blk < 6; ++blk) {
      FunctionalBlockInstance inst = make_block_instance(
          FunctionalBlockId{0}, 400, {{k, 8.0, 25, 0.1}}, 200, 200, rng);
      stamp_programmed_trigger(inst, combined);
      trace.blocks.push_back(std::move(inst));
    }
    return trace;
  };
  const ApplicationTrace trace_a = rebuild("A", 1);
  const ApplicationTrace trace_b = rebuild("B", 2);

  FabricManager shared(1, 1, &combined.data_paths());
  MRts rts_a(combined, shared);
  MRts rts_b(combined, shared);
  const TimeSlicedResult shared_run = run_time_sliced(
      {{"A", &rts_a, &trace_a}, {"B", &rts_b, &trace_b}});

  const Cycles shared_a = shared_run.tasks[0].active_cycles;
  // Contention cannot make the task faster than running alone...
  EXPECT_GE(shared_a + shared_a / 50, alone_cycles);
  // ...but the RTS still beats RISC mode despite the eviction churn.
  EXPECT_LT(shared_a, risc_cycles);
}

TEST(MultiTask, UnevenTraceLengthsPinInterleaving) {
  // One task exhausts its trace while the other continues: A has 1 block,
  // B has 3. Round-robin order is A1 B1 | B2 | B3 — after A's trace ends,
  // B gets the core back-to-back and the timeline stays gap-free. This
  // pins the interleaving semantics the sweep runner's multi-tenant
  // scenarios build on.
  SmallApp a = make_app("A", 1, 1);
  SmallApp b = make_app("B", 3, 2);
  RiscOnlyRts rts_a(a.library);
  RiscOnlyRts rts_b(b.library);
  const std::vector<Task> tasks = {{"A", &rts_a, &a.trace},
                                   {"B", &rts_b, &b.trace}};
  const TimeSlicedResult r = run_time_sliced(tasks);

  ASSERT_EQ(r.tasks[0].block_cycles.size(), 1u);
  ASSERT_EQ(r.tasks[1].block_cycles.size(), 3u);
  // A runs first in round 1, so it finishes exactly when its only block
  // ends — before any later block of B.
  EXPECT_EQ(r.tasks[0].finished_at, r.tasks[0].block_cycles[0]);
  // B's last block closes the gap-free timeline.
  EXPECT_EQ(r.tasks[1].finished_at, r.total_cycles);
  EXPECT_EQ(r.total_cycles,
            r.tasks[0].active_cycles + r.tasks[1].active_cycles);
}

TEST(MultiTask, TaskVectorIsNotCopied) {
  // run_time_sliced takes the task list by const reference; the caller's
  // vector (including the non-owned pointers) must be left untouched.
  SmallApp a = make_app("A", 2, 1);
  RiscOnlyRts rts(a.library);
  const std::vector<Task> tasks = {{"A", &rts, &a.trace, 2}};
  const Task* before = tasks.data();
  const TimeSlicedResult r = run_time_sliced(tasks);
  EXPECT_EQ(tasks.data(), before);
  EXPECT_EQ(tasks[0].rts, &rts);
  EXPECT_EQ(r.tasks[0].block_cycles.size(), 2u);
}

TEST(MultiTask, WeightedSlicesGiveLargerShare) {
  SmallApp a = make_app("A", 6, 1);
  SmallApp b = make_app("B", 6, 2);
  RiscOnlyRts rts_a(a.library);
  RiscOnlyRts rts_b(b.library);
  // A gets 3 blocks per turn, B gets 1: A's 6 blocks finish in 2 turns while
  // B has only run 2 blocks.
  const TimeSlicedResult r = run_time_sliced(
      {{"A", &rts_a, &a.trace, 3}, {"B", &rts_b, &b.trace, 1}});
  EXPECT_EQ(r.tasks[0].block_cycles.size(), 6u);
  EXPECT_EQ(r.tasks[1].block_cycles.size(), 6u);
  // With weight 3, A's last block ends before B's third block starts:
  // ordering A A A B | A A A B | B B B B -> A finishes during round 2.
  EXPECT_LT(r.tasks[0].finished_at, r.tasks[1].finished_at);
}

TEST(MultiTask, ZeroSliceWeightRejected) {
  SmallApp a = make_app("A", 1, 1);
  RiscOnlyRts rts(a.library);
  EXPECT_THROW(run_time_sliced({{"A", &rts, &a.trace, 0}}),
               std::invalid_argument);
}

TEST(MultiTask, NullTaskRejected) {
  SmallApp a = make_app("A", 1, 1);
  RiscOnlyRts rts(a.library);
  EXPECT_THROW(run_time_sliced({{"bad", nullptr, &a.trace}}),
               std::invalid_argument);
  EXPECT_THROW(run_time_sliced({{"bad", &rts, nullptr}}),
               std::invalid_argument);
}

TEST(MultiTask, EmptyTaskListIsZeroCycles) {
  const TimeSlicedResult r = run_time_sliced({});
  EXPECT_EQ(r.total_cycles, 0u);
  EXPECT_TRUE(r.tasks.empty());
}

TEST(MultiTask, DeterministicAcrossRuns) {
  SmallApp a = make_app("A", 4, 1);
  auto run_once = [&a]() {
    MRts rts(a.library, 1, 1);
    return run_application(rts, a.trace).total_cycles;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mrts
