// Integration-level tests of the MRts facade: trigger handling, installation,
// ECU wiring, MPU learning and the Section 5.4 overhead accounting.

#include <gtest/gtest.h>

#include "isa/ise_builder.h"
#include "rts/mrts.h"

namespace mrts {
namespace {

IseLibrary small_library() {
  IseLibrary lib;
  IseBuildSpec a;
  a.kernel_name = "A";
  a.sw_latency = 900;
  a.control_fraction = 0.25;
  a.fg_data_path_names = {"a_fg1", "a_fg2"};
  a.cg_data_path_names = {"a_cg1", "a_cg2"};
  build_kernel_ises(lib, a);
  IseBuildSpec b;
  b.kernel_name = "B";
  b.sw_latency = 700;
  b.control_fraction = 0.75;
  b.fg_data_path_names = {"b_fg1", "b_fg2"};
  b.cg_data_path_names = {"b_cg1"};
  build_kernel_ises(lib, b);
  return lib;
}

TriggerInstruction trigger(const IseLibrary& lib, double ea, double eb) {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("A"), ea, 400, 40});
  ti.entries.push_back({lib.find_kernel("B"), eb, 600, 60});
  return ti;
}

TEST(MRts, TriggerSelectsAndInstallsPerKernel) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 2, 2);
  const SelectionOutcome out = rts.on_trigger(trigger(lib, 2000, 800), 0);
  EXPECT_EQ(out.selection.selected.size(), 2u);
  EXPECT_GT(out.blocking_overhead, 0u);
  EXPECT_EQ(rts.run_stats().triggers, 1u);
  EXPECT_EQ(rts.run_stats().selected_ises, 2u);
}

TEST(MRts, ExecutionsGetFasterOverTheBlock) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 2, 2);
  rts.on_trigger(trigger(lib, 2000, 800), 0);
  const KernelId a = lib.find_kernel("A");
  const Cycles early = rts.execute_kernel(a, 1'000).latency;
  const Cycles late = rts.execute_kernel(a, 2'000'000).latency;
  EXPECT_LE(late, early);
  EXPECT_LT(late, lib.kernel(a).sw_latency);
}

TEST(MRts, SecondBlockReusesConfiguration) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 2, 2);
  rts.on_trigger(trigger(lib, 2000, 800), 0);
  const auto first_reuse = rts.run_stats().reused_instances;
  rts.on_trigger(trigger(lib, 2000, 800), 5'000'000);
  EXPECT_GT(rts.run_stats().reused_instances, first_reuse);
  // With everything already loaded, kernel A runs accelerated immediately.
  const KernelId a = lib.find_kernel("A");
  const ExecOutcome out = rts.execute_kernel(a, 5'001'000);
  EXPECT_NE(out.impl, ImplKind::kRisc);
}

TEST(MRts, MpuLearnsFromObservations) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 2, 2);
  rts.on_trigger(trigger(lib, 10, 10), 0);  // forecast says "cold"

  BlockObservation obs;
  obs.functional_block = FunctionalBlockId{0};
  obs.kernels.push_back({lib.find_kernel("A"), 5000.0, 400, 40});
  obs.kernels.push_back({lib.find_kernel("B"), 5000.0, 600, 60});
  rts.on_block_end(obs, 1'000'000);
  rts.on_block_end(obs, 2'000'000);
  EXPECT_GT(rts.mpu().observations(), 0u);

  // The refined forecast (not the stale programmed one) drives selection:
  // with thousands of executions the selector can now justify FG/MG fabric.
  const SelectionOutcome out =
      rts.on_trigger(trigger(lib, 10, 10), 3'000'000);
  double total_profit = 0.0;
  for (const auto& sel : out.selection.selected) total_profit += sel.profit;
  EXPECT_GT(total_profit, 10'000.0);
}

TEST(MRts, OverheadIsChargedOnlyWhenEnabled) {
  const IseLibrary lib = small_library();
  MRtsConfig free_cfg;
  free_cfg.charge_selection_overhead = false;
  MRts charged(lib, 2, 2);
  MRts free_rts(lib, 2, 2, free_cfg);
  const Cycles charged_overhead =
      charged.on_trigger(trigger(lib, 2000, 800), 0).blocking_overhead;
  const Cycles free_overhead =
      free_rts.on_trigger(trigger(lib, 2000, 800), 0).blocking_overhead;
  EXPECT_GT(charged_overhead, 0u);
  EXPECT_EQ(free_overhead, 0u);
}

TEST(MRts, BlockingOverheadIsFirstRoundOnly) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 2, 2);
  const SelectionOutcome out = rts.on_trigger(trigger(lib, 2000, 800), 0);
  EXPECT_LT(out.blocking_overhead, out.selection.overhead_cycles);
  EXPECT_EQ(rts.run_stats().total_blocking_cycles, out.blocking_overhead);
  EXPECT_EQ(rts.run_stats().total_selection_cycles,
            out.selection.overhead_cycles);
}

TEST(MRts, OptimalSelectorVariantWorks) {
  const IseLibrary lib = small_library();
  MRtsConfig cfg;
  cfg.use_optimal_selector = true;
  MRts rts(lib, 2, 2, cfg);
  EXPECT_EQ(rts.name(), "mRTS(optimal)");
  const SelectionOutcome out = rts.on_trigger(trigger(lib, 2000, 800), 0);
  EXPECT_FALSE(out.selection.selected.empty());
}

TEST(MRts, SelectionClassificationCountsGrains) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 3, 4);
  rts.on_trigger(trigger(lib, 5000, 5000), 0);
  const MRtsRunStats& stats = rts.run_stats();
  EXPECT_EQ(stats.selected_ises,
            stats.selected_fg_ises + stats.selected_cg_ises +
                stats.selected_mg_ises);
}

TEST(MRts, ResetRestoresPowerOnState) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 2, 2);
  rts.on_trigger(trigger(lib, 2000, 800), 0);
  rts.execute_kernel(lib.find_kernel("A"), 100);
  rts.reset();
  EXPECT_EQ(rts.run_stats().triggers, 0u);
  EXPECT_EQ(rts.ecu().stats().total_executions(), 0u);
  EXPECT_EQ(rts.fabric().usage().reserved_prcs, 0u);
  // After reset the kernel runs in RISC mode again.
  const ExecOutcome out = rts.execute_kernel(lib.find_kernel("A"), 200);
  EXPECT_EQ(out.impl, ImplKind::kRisc);
}

TEST(MRts, ZeroFabricDegradesToRiscOnly) {
  const IseLibrary lib = small_library();
  MRts rts(lib, 0, 0);
  const SelectionOutcome out = rts.on_trigger(trigger(lib, 5000, 5000), 0);
  EXPECT_TRUE(out.selection.selected.empty());
  const ExecOutcome exec = rts.execute_kernel(lib.find_kernel("A"), 100);
  EXPECT_EQ(exec.impl, ImplKind::kRisc);
}

}  // namespace
}  // namespace mrts
