// Tests for the deterministic fault injector (arch/fault_model.h) and the
// fault-tolerant reconfiguration path it drives: FaultModel decision logic,
// FabricManager quarantine semantics, and the end-to-end properties of the
// faulty machine — determinism across sweep worker counts, no speedup gain
// from faults, and graceful degradation to pure RISC execution when every
// container is dead.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/fabric_manager.h"
#include "arch/fault_model.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "sim/sweep_runner.h"
#include "util/counters.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

// --- FaultModel decision logic ---------------------------------------------

TEST(FaultModel, DefaultConfigInjectsNothing) {
  const FaultModelConfig config;
  EXPECT_FALSE(config.any_faults());
  FaultModel model(config);
  for (int i = 0; i < 100; ++i) {
    const LoadFaultOutcome out = model.plan_load(Grain::kFine, 480'000);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.retries, 0u);
    EXPECT_EQ(out.port_cycles, 480'000u);
    EXPECT_FALSE(out.quarantine);
    EXPECT_FALSE(model.upset());
  }
  EXPECT_EQ(model.stats().injected, 0u);
}

TEST(FaultModel, SameSeedReproducesIdenticalFaultTimeline) {
  const FaultModelConfig config = FaultModelConfig::uniform(0.3, 1234);
  FaultModel a(config);
  FaultModel b(config);
  for (int i = 0; i < 200; ++i) {
    const LoadFaultOutcome oa = a.plan_load(Grain::kFine, 1000);
    const LoadFaultOutcome ob = b.plan_load(Grain::kFine, 1000);
    EXPECT_EQ(oa.success, ob.success);
    EXPECT_EQ(oa.retries, ob.retries);
    EXPECT_EQ(oa.port_cycles, ob.port_cycles);
    EXPECT_EQ(oa.quarantine, ob.quarantine);
    EXPECT_EQ(a.upset(), b.upset());
  }
  EXPECT_EQ(a.stats().injected, b.stats().injected);
}

TEST(FaultModel, DifferentSeedsDiverge) {
  FaultModel a(FaultModelConfig::uniform(0.5, 1));
  FaultModel b(FaultModelConfig::uniform(0.5, 2));
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.plan_load(Grain::kFine, 1000).retries !=
               b.plan_load(Grain::kFine, 1000).retries;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultModel, RateOneExhaustsRetriesAndQuarantines) {
  FaultModel model(FaultModelConfig::uniform(1.0, 7, /*max_retries=*/2));
  const LoadFaultOutcome out = model.plan_load(Grain::kCoarse, 1000);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.retries, 2u);
  EXPECT_TRUE(out.quarantine);  // permanent_fault_prob is 1.0 too
  // Every attempt streams the full 1000 cycles; retries pay backoff first.
  EXPECT_EQ(out.port_cycles,
            3 * 1000u + model.backoff(0) + model.backoff(1));
  EXPECT_EQ(model.stats().load_failures, 3u);
  EXPECT_EQ(model.stats().failed_loads, 1u);
}

TEST(FaultModel, ZeroRetriesAbandonsOnFirstFailure) {
  FaultModel model(FaultModelConfig::uniform(1.0, 7, /*max_retries=*/0));
  const LoadFaultOutcome out = model.plan_load(Grain::kFine, 500);
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.port_cycles, 500u);  // one attempt, no backoff
}

TEST(FaultModel, BackoffDoublesAndClampsTheShift) {
  FaultModel model(FaultModelConfig{});
  EXPECT_EQ(model.backoff(0), 4000u);
  EXPECT_EQ(model.backoff(1), 8000u);
  EXPECT_EQ(model.backoff(2), 16000u);
  EXPECT_EQ(model.backoff(10), 4000u << 10);
  EXPECT_EQ(model.backoff(25), model.backoff(20));  // shift clamp, no UB
}

TEST(FaultModel, UniformDrivesEveryAxis) {
  const FaultModelConfig c = FaultModelConfig::uniform(0.25, 99, 5);
  EXPECT_DOUBLE_EQ(c.fg_load_failure_prob, 0.25);
  EXPECT_DOUBLE_EQ(c.cg_load_failure_prob, 0.25);
  EXPECT_DOUBLE_EQ(c.transient_upset_prob, 0.25);
  EXPECT_DOUBLE_EQ(c.permanent_fault_prob, 0.25);
  EXPECT_EQ(c.seed, 99u);
  EXPECT_EQ(c.max_retries, 5u);
  EXPECT_TRUE(c.any_faults());
}

// --- FabricManager quarantine semantics ------------------------------------

class QuarantineTest : public ::testing::Test {
 protected:
  QuarantineTest() {
    DataPathDesc fg;
    fg.name = "fg";
    fg.grain = Grain::kFine;
    fg_ = table_.add(fg);

    DataPathDesc mono;
    mono.name = "mono";
    mono.grain = Grain::kCoarse;
    mono.context_instructions = 32;
    mono_ = table_.add(mono);
  }

  DataPathTable table_;
  DataPathId fg_, mono_;
};

TEST_F(QuarantineTest, QuarantineShrinksUsableCapacity) {
  FabricManager fm(2, 2, &table_);
  EXPECT_EQ(fm.usable_prcs(), 2u);
  EXPECT_EQ(fm.usable_cg_fabrics(), 2u);
  fm.quarantine_prc(0, 0);
  fm.quarantine_prc(0, 0);  // idempotent
  fm.quarantine_cg(1, 0);
  EXPECT_EQ(fm.usable_prcs(), 1u);
  EXPECT_EQ(fm.usable_cg_fabrics(), 1u);
  EXPECT_TRUE(fm.prc_quarantined(0));
  EXPECT_FALSE(fm.prc_quarantined(1));
  EXPECT_TRUE(fm.cg_quarantined(1));
  const FabricUsage usage = fm.usage();
  EXPECT_EQ(usage.quarantined_prcs, 1u);
  EXPECT_EQ(usage.quarantined_cg, 1u);
  EXPECT_EQ(usage.usable_prcs(), 1u);
  EXPECT_EQ(usage.usable_cg(), 1u);
}

TEST_F(QuarantineTest, QuarantineSurvivesReset) {
  FabricManager fm(1, 2, &table_);
  fm.quarantine_prc(1, 0);
  fm.reset();
  EXPECT_TRUE(fm.prc_quarantined(1));
  EXPECT_EQ(fm.usable_prcs(), 1u);
}

TEST_F(QuarantineTest, InstallNeverPlacesOnQuarantinedPrc) {
  FabricManager fm(0, 2, &table_);
  fm.quarantine_prc(0, 0);
  const auto placements =
      fm.install({{IseId{0}, KernelId{0}, {fg_}}}, /*now=*/0);
  ASSERT_EQ(placements.size(), 1u);
  ASSERT_EQ(placements[0].instance_ready.size(), 1u);
  EXPECT_NE(placements[0].instance_ready[0], kNeverCycles);
  // The only untainted PRC hosts the load; the quarantined one stays empty.
  EXPECT_TRUE(fm.fg_fabric().prc(0).empty());
  EXPECT_FALSE(fm.fg_fabric().prc(1).empty());
}

TEST_F(QuarantineTest, OversizedSelectionThrowsWithoutFaultModel) {
  FabricManager fm(0, 2, &table_);
  fm.quarantine_prc(0, 0);
  // Two FG instances no longer fit; the fault-free strict contract throws.
  EXPECT_THROW(fm.install({{IseId{0}, KernelId{0}, {fg_, fg_}}}, 0),
               std::invalid_argument);
}

TEST_F(QuarantineTest, OversizedSelectionDegradesWithFaultModel) {
  FaultModel model(FaultModelConfig::uniform(0.0, 1));
  FabricManager fm(0, 2, &table_);
  fm.attach_fault_model(&model);
  fm.quarantine_prc(0, 0);
  // With an attached injector the manager drops what no longer fits instead
  // of crashing the run mid-simulation.
  const auto placements =
      fm.install({{IseId{0}, KernelId{0}, {fg_, fg_}}}, 0);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].instance_ready[0], kNeverCycles);
}

TEST_F(QuarantineTest, MonoCgUnavailableWhenAllCgQuarantined) {
  FabricManager fm(2, 1, &table_);
  EXPECT_TRUE(fm.acquire_mono_cg(mono_, 0).has_value());
  fm.quarantine_cg(0, 0);
  fm.quarantine_cg(1, 0);
  EXPECT_EQ(fm.usable_cg_fabrics(), 0u);
  EXPECT_FALSE(fm.acquire_mono_cg(mono_, 0).has_value());
  EXPECT_EQ(fm.free_cg_fabrics(), 0u);
}

// --- End-to-end properties on the H.264 workload ---------------------------

class FaultSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    H264AppParams params;
    params.frames = 3;
    params.macroblocks = 396;
    app_ = new H264Application(build_h264_application(params));
    RiscOnlyRts risc(app_->library);
    risc_cycles_ = run_application(risc, app_->trace).total_cycles;
  }

  static void TearDownTestSuite() {
    delete app_;
    app_ = nullptr;
  }

  static Cycles run_faulty(double rate, std::uint64_t seed,
                           unsigned max_retries = 3) {
    MRtsConfig config;
    if (rate > 0.0) {
      config.fault = FaultModelConfig::uniform(rate, seed, max_retries);
    }
    MRts rts(app_->library, 2, 4, config);
    return run_application(rts, app_->trace).total_cycles;
  }

  static H264Application* app_;
  static Cycles risc_cycles_;
};

H264Application* FaultSweepTest::app_ = nullptr;
Cycles FaultSweepTest::risc_cycles_ = 0;

// Property (i): the faulty machine is as deterministic as the fault-free
// one — sweeping the rate axis through SweepRunner yields bit-identical
// cycle counts at every worker count.
TEST_F(FaultSweepTest, CycleCountsIdenticalAcrossWorkerCounts) {
  const std::vector<double> rates = {0.0, 0.05, 0.2, 1.0};
  const std::vector<Cycles> serial = SweepRunner(1).map(
      rates, [](const double& r) { return run_faulty(r, 42); });
  for (unsigned jobs : {2u, 4u, 8u}) {
    const std::vector<Cycles> parallel = SweepRunner(jobs).map(
        rates, [](const double& r) { return run_faulty(r, 42); });
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

// Property (ii): faults never speed the machine up for free. The honest
// bound is subtle: quarantines shrink capacity, and on a short workload a
// *smaller* fault-free machine can legitimately be faster (less selection
// and reconfiguration overhead to amortize) — so a capacity-shedding fault
// may beat the full-size fault-free run. What a fault can never do is beat
// the best fault-free machine across every capacity it could degrade to.
// A 0.5% tolerance absorbs residual heuristic/MPU perturbation noise.
TEST_F(FaultSweepTest, SpeedupNeverMateriallyExceedsBestFaultFree) {
  Cycles best_fault_free = kNeverCycles;
  for (unsigned prcs = 0; prcs <= 4; ++prcs) {
    for (unsigned cg = 0; cg <= 2; ++cg) {
      MRts rts(app_->library, cg, prcs);
      best_fault_free = std::min(
          best_fault_free, run_application(rts, app_->trace).total_cycles);
    }
  }
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    for (double rate : {0.05, 0.2, 0.5, 1.0}) {
      const Cycles faulty = run_faulty(rate, seed);
      EXPECT_GE(faulty + best_fault_free / 200, best_fault_free)
          << "rate=" << rate << " seed=" << seed;
    }
  }
}

// Property (iii): at rate 1.0 with a zero retry budget every load fails and
// permanently quarantines its container, so the run must complete with every
// kernel execution in RISC mode — the bottom of the ECU degradation ladder —
// rather than crash or hang.
TEST_F(FaultSweepTest, RateOneZeroRetriesCompletesEverythingInRiscMode) {
  MRtsConfig config;
  config.fault = FaultModelConfig::uniform(1.0, 42, /*max_retries=*/0);
  MRts rts(app_->library, 2, 4, config);
  CounterRegistry counters;
  rts.attach_observability(nullptr, &counters);
  const AppRunResult result = run_application(rts, app_->trace);
  EXPECT_GT(result.total_cycles, 0u);

  const EcuStats& ecu = rts.ecu().stats();
  EXPECT_GT(ecu.total_executions(), 0u);
  EXPECT_EQ(ecu.executions[static_cast<std::size_t>(ImplKind::kRisc)],
            ecu.total_executions());

  ASSERT_NE(rts.fault_model(), nullptr);
  const FaultStats& stats = rts.fault_model()->stats();
  EXPECT_GT(stats.injected, 0u);
  EXPECT_EQ(stats.quarantined_prcs + stats.quarantined_cg, 4u + 2u);
  EXPECT_GT(counters.counter("fault.inject"), 0u);
  EXPECT_EQ(counters.counter("prc.quarantined"), 4u);
  EXPECT_EQ(counters.counter("cg.quarantined"), 2u);
}

// The injector only pays when enabled: a fault-free MRts run must be
// bit-identical with and without the (all-zero) fault config plumbing.
TEST_F(FaultSweepTest, ZeroRateMatchesFaultFreeMachineExactly) {
  MRts plain(app_->library, 2, 4);
  const Cycles base = run_application(plain, app_->trace).total_cycles;
  EXPECT_EQ(run_faulty(0.0, 123), base);
  EXPECT_EQ(plain.fault_model(), nullptr);
}

}  // namespace
}  // namespace mrts
