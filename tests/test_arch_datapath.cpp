// Unit tests for the data-path model: reconfiguration-time derivation from
// the paper's architecture constants and the DataPathTable registry.

#include <gtest/gtest.h>

#include "arch/data_path.h"
#include "util/types.h"

namespace mrts {
namespace {

TEST(DataPathDesc, FgReconfigTakesAboutOnePointTwoMs) {
  DataPathDesc dp;
  dp.grain = Grain::kFine;
  // Footnote 2: reconfiguring a single FG data path takes ~1.2 ms.
  EXPECT_NEAR(cycles_to_ms(dp.reconfig_cycles()), 1.2, 0.01);
}

TEST(DataPathDesc, CgReconfigTakesFractionOfMicrosecond) {
  DataPathDesc dp;
  dp.grain = Grain::kCoarse;
  dp.context_instructions = 30;
  // Footnote 2: ~0.00015 ms for the same data path on the CG fabric.
  // 30 instructions x 2 cycles = 60 cycles = 0.15 us at 400 MHz.
  EXPECT_EQ(dp.reconfig_cycles(), 60u);
  EXPECT_NEAR(cycles_to_ms(dp.reconfig_cycles()), 0.00015, 1e-5);
}

TEST(DataPathDesc, ReconfigScalesWithUnits) {
  DataPathDesc dp;
  dp.grain = Grain::kFine;
  dp.units = 2;
  DataPathDesc single = dp;
  single.units = 1;
  EXPECT_EQ(dp.reconfig_cycles(), 2 * single.reconfig_cycles());
}

TEST(DataPathDesc, FgReconfigProportionalToBitstream) {
  DataPathDesc small;
  small.grain = Grain::kFine;
  small.bitstream_bytes = 40'000;
  DataPathDesc big = small;
  big.bitstream_bytes = 80'000;
  EXPECT_NEAR(static_cast<double>(big.reconfig_cycles()),
              2.0 * static_cast<double>(small.reconfig_cycles()), 2.0);
}

TEST(DataPathTable, AddAssignsSequentialIds) {
  DataPathTable table;
  DataPathDesc a;
  a.name = "a";
  DataPathDesc b;
  b.name = "b";
  const DataPathId ia = table.add(a);
  const DataPathId ib = table.add(b);
  EXPECT_EQ(raw(ia), 0u);
  EXPECT_EQ(raw(ib), 1u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table[ia].name, "a");
}

TEST(DataPathTable, FindByName) {
  DataPathTable table;
  DataPathDesc a;
  a.name = "absdiff";
  table.add(a);
  EXPECT_EQ(table.find("absdiff"), DataPathId{0});
  EXPECT_EQ(table.find("missing"), kInvalidDataPath);
}

TEST(DataPathTable, RejectsDuplicatesAndBadInput) {
  DataPathTable table;
  DataPathDesc a;
  a.name = "a";
  table.add(a);
  EXPECT_THROW(table.add(a), std::invalid_argument);

  DataPathDesc empty;
  EXPECT_THROW(table.add(empty), std::invalid_argument);

  DataPathDesc zero_units;
  zero_units.name = "z";
  zero_units.units = 0;
  EXPECT_THROW(table.add(zero_units), std::invalid_argument);

  DataPathDesc big_ctx;
  big_ctx.name = "ctx";
  big_ctx.grain = Grain::kCoarse;
  big_ctx.context_instructions = kCgContextMemoryInstructions + 1;
  EXPECT_THROW(table.add(big_ctx), std::invalid_argument);
}

TEST(DataPathTable, OutOfRangeAccessThrows) {
  DataPathTable table;
  EXPECT_THROW(table[DataPathId{0}], std::out_of_range);
  EXPECT_FALSE(table.contains(DataPathId{0}));
}

TEST(Grain, ToString) {
  EXPECT_STREQ(to_string(Grain::kCoarse), "CG");
  EXPECT_STREQ(to_string(Grain::kFine), "FG");
}

}  // namespace
}  // namespace mrts
