// Tests of the state-of-the-art baselines: RISPP-like, Morpheus/4S-like and
// the offline-optimal scheme, checking exactly the restrictions the paper
// attributes to each.

#include <gtest/gtest.h>

#include "baselines/morpheus4s_rts.h"
#include "baselines/offline_optimal_rts.h"
#include "baselines/rispp_rts.h"
#include "baselines/risc_only_rts.h"
#include "isa/ise_builder.h"

namespace mrts {
namespace {

IseLibrary library() {
  IseLibrary lib;
  IseBuildSpec data;
  data.kernel_name = "DATA";  // data-dominant: CG-friendly
  data.sw_latency = 1000;
  data.control_fraction = 0.15;
  data.fg_data_speedup = 3.0;  // streaming word-level code: the CG ALU
  data.cg_data_speedup = 7.0;  // array beats FPGA LUT logic here
  data.fg_data_path_names = {"d_fg1", "d_fg2"};
  data.cg_data_path_names = {"d_cg1", "d_cg2"};
  build_kernel_ises(lib, data);
  IseBuildSpec ctrl;
  ctrl.kernel_name = "CTRL";  // control-dominant: FG-friendly
  ctrl.sw_latency = 900;
  ctrl.control_fraction = 0.85;
  ctrl.fg_data_path_names = {"c_fg1", "c_fg2"};
  ctrl.cg_data_path_names = {"c_cg1"};
  build_kernel_ises(lib, ctrl);
  return lib;
}

TriggerInstruction trigger(const IseLibrary& lib, double e_data,
                           double e_ctrl) {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("DATA"), e_data, 300, 30});
  ti.entries.push_back({lib.find_kernel("CTRL"), e_ctrl, 500, 50});
  return ti;
}

std::vector<BlockProfile> profile(const IseLibrary& lib, double e_data,
                                  double e_ctrl, double invocations) {
  BlockProfile bp;
  bp.functional_block = FunctionalBlockId{0};
  bp.average = trigger(lib, e_data, e_ctrl);
  bp.invocations = invocations;
  return {bp};
}

// --- RISC-only --------------------------------------------------------------

TEST(RiscOnlyRts, AlwaysRunsAtSoftwareLatency) {
  const IseLibrary lib = library();
  RiscOnlyRts rts(lib);
  rts.on_trigger(trigger(lib, 1000, 1000), 0);
  const ExecOutcome out = rts.execute_kernel(lib.find_kernel("DATA"), 50);
  EXPECT_EQ(out.impl, ImplKind::kRisc);
  EXPECT_EQ(out.latency, 1000u);
  EXPECT_EQ(rts.name(), "RISC-only");
}

// --- RISPP-like --------------------------------------------------------------

TEST(RisppRts, NeverUsesMonoCg) {
  const IseLibrary lib = library();
  RisppRts rts(lib, 3, 0);  // CG fabrics only, nothing selected fits FG
  rts.on_trigger(trigger(lib, 2000, 500), 0);
  // Drive many executions; monoCG must never appear.
  for (Cycles t = 0; t < 100'000; t += 5'000) {
    const ExecOutcome out = rts.execute_kernel(lib.find_kernel("CTRL"), t);
    EXPECT_NE(out.impl, ImplKind::kMonoCg);
  }
}

TEST(RisppRts, CostFunctionUndervaluesFastCgReconfig) {
  // Few executions: mRTS-style pricing knows the CG variant is ready in
  // microseconds and profits from it; the RISPP cost function prices it like
  // a 1.2 ms load, sees (almost) no profit anywhere and effectively guesses.
  const IseLibrary lib = library();
  RisppRts rispp(lib, 2, 2);
  const SelectionOutcome out = rispp.on_trigger(trigger(lib, 40, 30), 0);
  double rispp_profit = 0.0;
  for (const auto& sel : out.selection.selected) rispp_profit += sel.profit;
  // Under FG-scale pricing, 30-40 executions cannot amortize anything.
  EXPECT_NEAR(rispp_profit, 0.0, 1.0);
}

TEST(RisppRts, StillAdaptsViaMpu) {
  const IseLibrary lib = library();
  RisppRts rts(lib, 2, 2);
  rts.on_trigger(trigger(lib, 10, 10), 0);
  BlockObservation obs;
  obs.functional_block = FunctionalBlockId{0};
  obs.kernels.push_back({lib.find_kernel("DATA"), 100'000.0, 300, 30});
  obs.kernels.push_back({lib.find_kernel("CTRL"), 100'000.0, 500, 50});
  rts.on_block_end(obs, 1'000'000);
  const SelectionOutcome out = rts.on_trigger(trigger(lib, 10, 10), 2'000'000);
  double p = 0.0;
  for (const auto& sel : out.selection.selected) p += sel.profit;
  EXPECT_GT(p, 0.0);  // the learned 100k executions amortize even FG pricing
}

// --- Morpheus/4S-like --------------------------------------------------------

TEST(Morpheus4sRts, StaticSelectionIsSingleGrainOnly) {
  const IseLibrary lib = library();
  Morpheus4sRts rts(lib, 2, 2, profile(lib, 3000, 3000, 16));
  ASSERT_FALSE(rts.static_selection().empty());
  for (const auto& req : rts.static_selection()) {
    const IseVariant& v = lib.ise(req.ise);
    EXPECT_FALSE(v.is_multi_grained()) << v.name;
  }
}

TEST(Morpheus4sRts, StaticSelectionFitsFabric) {
  const IseLibrary lib = library();
  for (unsigned prcs = 0; prcs <= 3; ++prcs) {
    for (unsigned cg = 0; cg <= 3; ++cg) {
      Morpheus4sRts rts(lib, cg, prcs, profile(lib, 3000, 3000, 16));
      unsigned used_fg = 0;
      unsigned used_cg = 0;
      for (const auto& req : rts.static_selection()) {
        used_fg += lib.ise(req.ise).fg_units;
        used_cg += lib.ise(req.ise).cg_units;
      }
      EXPECT_LE(used_fg, prcs);
      EXPECT_LE(used_cg, cg);
    }
  }
}

TEST(Morpheus4sRts, AssignsDataKernelToCgAndCtrlKernelToFg) {
  const IseLibrary lib = library();
  Morpheus4sRts rts(lib, 2, 2, profile(lib, 3000, 3000, 16));
  for (const auto& req : rts.static_selection()) {
    const IseVariant& v = lib.ise(req.ise);
    if (req.kernel == lib.find_kernel("DATA")) {
      EXPECT_TRUE(v.is_cg_only()) << v.name;
    } else {
      EXPECT_TRUE(v.is_fg_only()) << v.name;
    }
  }
}

TEST(Morpheus4sRts, NoIntermediateExecutionBeforeFullConfiguration) {
  const IseLibrary lib = library();
  Morpheus4sRts rts(lib, 2, 2, profile(lib, 3000, 3000, 16));
  rts.on_trigger(trigger(lib, 3000, 3000), 0);
  // The CTRL kernel got an FG ISE; before its bitstreams complete it must
  // run in RISC mode (loosely coupled: no intermediate ISEs, no monoCG).
  const ExecOutcome early = rts.execute_kernel(lib.find_kernel("CTRL"), 1000);
  EXPECT_EQ(early.impl, ImplKind::kRisc);
  const ExecOutcome late =
      rts.execute_kernel(lib.find_kernel("CTRL"), 10'000'000);
  EXPECT_EQ(late.impl, ImplKind::kFullIse);
}

TEST(Morpheus4sRts, ReconfiguresOnlyOnce) {
  const IseLibrary lib = library();
  Morpheus4sRts rts(lib, 2, 2, profile(lib, 3000, 3000, 16));
  rts.on_trigger(trigger(lib, 3000, 3000), 0);
  const auto jobs_after_first = rts.on_trigger(trigger(lib, 1, 1), 500);
  (void)jobs_after_first;
  // Second trigger changes nothing on the fabric: a kernel accelerated
  // before stays accelerated, nothing new is loaded.
  const ExecOutcome out =
      rts.execute_kernel(lib.find_kernel("DATA"), 10'000'000);
  EXPECT_EQ(out.impl, ImplKind::kFullIse);
}

// --- Offline-optimal ---------------------------------------------------------

TEST(OfflineOptimalRts, PrecomputesPerBlockSelections) {
  const IseLibrary lib = library();
  OfflineOptimalRts rts(lib, 2, 2, profile(lib, 3000, 3000, 16));
  EXPECT_FALSE(rts.selection_for(FunctionalBlockId{0}).empty());
  EXPECT_TRUE(rts.selection_for(FunctionalBlockId{9}).empty());
}

TEST(OfflineOptimalRts, UsesIntermediatesButNoMonoCg) {
  const IseLibrary lib = library();
  OfflineOptimalRts rts(lib, 2, 2, profile(lib, 50'000, 50'000, 16));
  rts.on_trigger(trigger(lib, 50'000, 50'000), 0);
  bool saw_intermediate = false;
  for (Cycles t = 100; t < 2'000'000; t += 50'000) {
    const ExecOutcome out = rts.execute_kernel(lib.find_kernel("CTRL"), t);
    EXPECT_NE(out.impl, ImplKind::kMonoCg);
    if (out.impl == ImplKind::kIntermediate ||
        out.impl == ImplKind::kCoveredIse) {
      saw_intermediate = true;
    }
  }
  EXPECT_TRUE(saw_intermediate);
}

TEST(OfflineOptimalRts, SelectionIsIdenticalEveryInvocation) {
  const IseLibrary lib = library();
  OfflineOptimalRts rts(lib, 2, 2, profile(lib, 3000, 3000, 16));
  const SelectionOutcome a = rts.on_trigger(trigger(lib, 3000, 3000), 0);
  // Even with a wildly different actual trigger, the static scheme installs
  // the same precomputed set.
  const SelectionOutcome b = rts.on_trigger(trigger(lib, 1, 1), 9'000'000);
  ASSERT_EQ(a.selection.selected.size(), b.selection.selected.size());
  for (std::size_t i = 0; i < a.selection.selected.size(); ++i) {
    EXPECT_EQ(a.selection.selected[i].ise, b.selection.selected[i].ise);
  }
}

TEST(OfflineOptimalRts, NoOverheadCharged) {
  const IseLibrary lib = library();
  OfflineOptimalRts rts(lib, 2, 2, profile(lib, 3000, 3000, 16));
  EXPECT_EQ(rts.on_trigger(trigger(lib, 3000, 3000), 0).blocking_overhead, 0u);
}

}  // namespace
}  // namespace mrts
