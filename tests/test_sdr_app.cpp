// Tests for the SDR receiver workload and — more importantly — that the
// run-time system's qualitative behaviour (Fig. 8 / Fig. 10 orderings) is
// not an artifact of the H.264 model: it must generalize to a structurally
// different application.

#include <gtest/gtest.h>

#include <set>

#include "baselines/morpheus4s_rts.h"
#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/metrics.h"
#include "workload/sdr_app.h"

namespace mrts {
namespace {

SdrAppParams small_params() {
  SdrAppParams p;
  p.bursts = 5;
  p.batches = 250;
  return p;
}

TEST(SdrApp, StructureThreeBlocksPerBurst) {
  const SdrApplication app = build_sdr_application(small_params());
  ASSERT_EQ(app.trace.blocks.size(), 15u);
  EXPECT_EQ(app.trace.blocks[0].functional_block, app.fb_filter);
  EXPECT_EQ(app.trace.blocks[1].functional_block, app.fb_demod);
  EXPECT_EQ(app.trace.blocks[2].functional_block, app.fb_decode);
  EXPECT_EQ(app.library.num_kernels(), 9u);
}

TEST(SdrApp, DeterministicFromSeed) {
  const SdrApplication a = build_sdr_application(small_params());
  const SdrApplication b = build_sdr_application(small_params());
  EXPECT_EQ(a.trace.total_events(), b.trace.total_events());
}

TEST(SdrApp, NoiseDrivesViterbiWorkVariation) {
  SdrAppParams p;
  p.bursts = 12;
  p.batches = 250;
  const SdrApplication app = build_sdr_application(p);
  std::set<std::size_t> counts;
  for (unsigned b = 0; b < p.bursts; ++b) {
    counts.insert(
        app.trace.blocks[b * 3 + 2].executions_of(app.k_viterbi));
  }
  EXPECT_GE(counts.size(), 6u) << "per-burst decode work must vary";
}

TEST(SdrApp, EveryKernelHasIseFamilyAndMono) {
  const SdrApplication app = build_sdr_application(small_params());
  for (KernelId k : app.all_kernels()) {
    EXPECT_FALSE(app.library.kernel(k).ises.empty());
    EXPECT_TRUE(app.library.kernel(k).has_mono_cg());
  }
}

TEST(SdrApp, MrtsGeneralizesBeyondH264) {
  const SdrApplication app = build_sdr_application(small_params());
  const auto profile = profile_application(app.trace, app.library);

  RiscOnlyRts risc(app.library);
  const Cycles risc_cycles = run_application(risc, app.trace).total_cycles;

  MRts mrts_rts(app.library, 2, 2);
  const Cycles mrts_cycles = run_application(mrts_rts, app.trace).total_cycles;

  Morpheus4sRts morpheus(app.library, 2, 2, profile);
  const Cycles morpheus_cycles =
      run_application(morpheus, app.trace).total_cycles;

  EXPECT_GT(speedup(risc_cycles, mrts_cycles), 1.8)
      << "the receiver must accelerate well on a 2+2 fabric";
  EXPECT_LT(mrts_cycles, morpheus_cycles)
      << "run-time selection must beat the task-level static scheme";
}

TEST(SdrApp, MultiGrainedDominanceHoldsHere) {
  const SdrApplication app = build_sdr_application(small_params());
  auto run = [&app](unsigned cg, unsigned prcs) {
    MRts rts(app.library, cg, prcs);
    return run_application(rts, app.trace).total_cycles;
  };
  const Cycles mg_small = run(1, 1);
  const Cycles fg_only = run(0, 2);
  const Cycles cg_only = run(2, 0);
  EXPECT_LT(mg_small, fg_only);
  EXPECT_LT(mg_small, cg_only);
}

}  // namespace
}  // namespace mrts
