// Unit tests for the Execution Control Unit: the Fig. 7 decision chain
// (full ISE -> intermediate ISE -> monoCG-Extension -> RISC), cross-ISE
// coverage and the statistics counters.

#include <gtest/gtest.h>

#include "arch/fabric_manager.h"
#include "rts/ecu.h"

namespace mrts {
namespace {

/// One kernel (sw 1000) with:
///  * K.FG2: two FG data paths, intermediate 400, full 150 (slow to load),
///  * K.MG:  CG + FG data path, intermediate 600, full 180,
///  * K.CG:  one CG data path, full 650,
///  * K.mono: monoCG-Extension, 550.
class EcuTest : public ::testing::Test {
 protected:
  EcuTest() {
    auto add_dp = [this](const char* name, Grain grain) {
      DataPathDesc dp;
      dp.name = name;
      dp.grain = grain;
      if (grain == Grain::kCoarse) dp.context_instructions = 30;
      return lib_.data_paths().add(dp);
    };
    cg_ = add_dp("cg", Grain::kCoarse);
    fg1_ = add_dp("fg1", Grain::kFine);
    fg2_ = add_dp("fg2", Grain::kFine);
    mono_dp_ = add_dp("mono", Grain::kCoarse);

    kernel_ = lib_.add_kernel("K", 1000);

    IseVariant fg_ise;
    fg_ise.kernel = kernel_;
    fg_ise.name = "K.FG2";
    fg_ise.data_paths = {fg1_, fg2_};
    fg_ise.latency_after = {1000, 400, 150};
    fg2_ise_ = lib_.add_ise(fg_ise);

    IseVariant mg;
    mg.kernel = kernel_;
    mg.name = "K.MG";
    mg.data_paths = {cg_, fg1_};
    mg.latency_after = {1000, 600, 180};
    mg_ = lib_.add_ise(mg);

    IseVariant cg_only;
    cg_only.kernel = kernel_;
    cg_only.name = "K.CG";
    cg_only.data_paths = {cg_};
    cg_only.latency_after = {1000, 650};
    cg_only_ = lib_.add_ise(cg_only);

    IseVariant mono_ise;
    mono_ise.kernel = kernel_;
    mono_ise.name = "K.mono";
    mono_ise.is_mono_cg = true;
    mono_ise.data_paths = {mono_dp_};
    mono_ise.latency_after = {1000, 550};
    mono_ise_ = lib_.add_ise(mono_ise);
  }

  Cycles fg_cost() const { return lib_.data_paths()[fg1_].reconfig_cycles(); }

  IseLibrary lib_;
  DataPathId cg_, fg1_, fg2_, mono_dp_;
  KernelId kernel_;
  IseId fg2_ise_, mg_, cg_only_, mono_ise_;
};

TEST_F(EcuTest, FullFallbackChainWithFgOnlySelection) {
  FabricManager fabric(1, 2, &lib_.data_paths());
  Ecu ecu(lib_, fabric);
  const auto placements =
      fabric.install({{fg2_ise_, kernel_, lib_.ise(fg2_ise_).data_paths}}, 0);
  ecu.begin_block(placements, 0);

  // t=0: nothing configured yet, the monoCG context is still streaming
  // (64 cycles + 2-cycle switch) -> RISC mode.
  const ExecOutcome at0 = ecu.execute(kernel_, 0);
  EXPECT_EQ(at0.impl, ImplKind::kRisc);
  EXPECT_EQ(at0.latency, 1000u);

  // t=100: the monoCG-Extension bridges the FG reconfiguration delay.
  const ExecOutcome at100 = ecu.execute(kernel_, 100);
  EXPECT_EQ(at100.impl, ImplKind::kMonoCg);
  EXPECT_EQ(at100.latency, 550u);  // same kernel as last: no context switch

  // After the first FG data path: the intermediate ISE (better than mono).
  const ExecOutcome mid = ecu.execute(kernel_, fg_cost() + 10);
  EXPECT_EQ(mid.impl, ImplKind::kIntermediate);
  EXPECT_EQ(mid.latency, 400u);

  // After both FG data paths: the full selected ISE.
  const ExecOutcome late = ecu.execute(kernel_, 2 * fg_cost() + 10);
  EXPECT_EQ(late.impl, ImplKind::kFullIse);
  EXPECT_EQ(late.latency, 150u);
}

TEST_F(EcuTest, MgIntermediateAvailableAlmostInstantly) {
  FabricManager fabric(1, 1, &lib_.data_paths());
  Ecu ecu(lib_, fabric);
  const auto placements =
      fabric.install({{mg_, kernel_, lib_.ise(mg_).data_paths}}, 0);
  ecu.begin_block(placements, 0);
  // The CG data path loads in 60 cycles -> intermediate ISE usable at once,
  // which is the whole point of listing CG data paths first in MG ISEs.
  const ExecOutcome out = ecu.execute(kernel_, 100);
  EXPECT_EQ(out.impl, ImplKind::kIntermediate);
  EXPECT_EQ(out.latency, 600u + 2u);  // first CG use: one context switch
}

TEST_F(EcuTest, RiscWhenNothingAvailable) {
  FabricManager fabric(0, 1, &lib_.data_paths());  // no CG fabric at all
  Ecu ecu(lib_, fabric);
  ecu.begin_block({}, 0);
  const ExecOutcome out = ecu.execute(kernel_, 0);
  EXPECT_EQ(out.impl, ImplKind::kRisc);
  EXPECT_EQ(out.latency, 1000u);
}

TEST_F(EcuTest, MonoCgDisabledFallsBackToRisc) {
  FabricManager fabric(1, 2, &lib_.data_paths());
  Ecu ecu(lib_, fabric,
          Ecu::Config{/*use_intermediates=*/true, /*use_cross_coverage=*/true,
                      /*use_mono_cg=*/false});
  const auto placements =
      fabric.install({{fg2_ise_, kernel_, lib_.ise(fg2_ise_).data_paths}}, 0);
  ecu.begin_block(placements, 0);
  EXPECT_EQ(ecu.execute(kernel_, 100).impl, ImplKind::kRisc);
}

TEST_F(EcuTest, IntermediatesDisabledWaitForFullIse) {
  FabricManager fabric(0, 2, &lib_.data_paths());
  Ecu ecu(lib_, fabric,
          Ecu::Config{/*use_intermediates=*/false,
                      /*use_cross_coverage=*/false,
                      /*use_mono_cg=*/false});
  const auto placements =
      fabric.install({{fg2_ise_, kernel_, lib_.ise(fg2_ise_).data_paths}}, 0);
  ecu.begin_block(placements, 0);
  EXPECT_EQ(ecu.execute(kernel_, fg_cost() + 10).impl, ImplKind::kRisc);
  EXPECT_EQ(ecu.execute(kernel_, 2 * fg_cost() + 10).impl,
            ImplKind::kFullIse);
}

TEST_F(EcuTest, CrossCoverageFindsOtherIsesOfKernel) {
  // Another kernel's selection loads the shared CG data path; kernel K has
  // no selection of its own but its K.MG/K.CG variants become (partially)
  // available through the shared data path.
  FabricManager fabric(2, 1, &lib_.data_paths());
  Ecu ecu(lib_, fabric);
  const KernelId other = lib_.add_kernel("OTHER", 500);
  IseVariant other_ise;
  other_ise.kernel = other;
  other_ise.name = "O.CG";
  other_ise.data_paths = {cg_};
  other_ise.latency_after = {500, 300};
  const IseId other_id = lib_.add_ise(other_ise);
  const auto placements = fabric.install({{other_id, other, {cg_}}}, 0);
  ecu.begin_block(placements, 0);

  const ExecOutcome out = ecu.execute(kernel_, 100);
  // Best covered option: K.MG at level 1 (latency 600), plus one context
  // switch for the first CG use in this block.
  EXPECT_EQ(out.impl, ImplKind::kCoveredIse);
  EXPECT_EQ(out.latency, 600u + 2u);
}

TEST_F(EcuTest, CrossCoverageDisabledIgnoresSharedPaths) {
  FabricManager fabric(2, 1, &lib_.data_paths());
  Ecu ecu(lib_, fabric,
          Ecu::Config{/*use_intermediates=*/true,
                      /*use_cross_coverage=*/false,
                      /*use_mono_cg=*/false});
  const KernelId other = lib_.add_kernel("OTHER2", 500);
  IseVariant other_ise;
  other_ise.kernel = other;
  other_ise.name = "O2.CG";
  other_ise.data_paths = {cg_};
  other_ise.latency_after = {500, 300};
  const IseId other_id = lib_.add_ise(other_ise);
  const auto placements = fabric.install({{other_id, other, {cg_}}}, 0);
  ecu.begin_block(placements, 0);
  EXPECT_EQ(ecu.execute(kernel_, 100).impl, ImplKind::kRisc);
}

TEST_F(EcuTest, ContextSwitchChargedOnKernelChange) {
  FabricManager fabric(2, 0, &lib_.data_paths());
  Ecu ecu(lib_, fabric,
          Ecu::Config{/*use_intermediates=*/true,
                      /*use_cross_coverage=*/false,
                      /*use_mono_cg=*/false});
  const auto placements = fabric.install({{cg_only_, kernel_, {cg_}}}, 0);
  ecu.begin_block(placements, 0);
  const ExecOutcome first = ecu.execute(kernel_, 1000);
  EXPECT_EQ(first.impl, ImplKind::kFullIse);
  EXPECT_EQ(first.latency, 650u + 2u);  // switch: no kernel ran before
  const ExecOutcome second = ecu.execute(kernel_, 2000);
  EXPECT_EQ(second.latency, 650u);  // consecutive same kernel: no switch
  EXPECT_EQ(ecu.stats().context_switch_cycles, 2u);
}

TEST_F(EcuTest, StatsAccumulatePerImplKind) {
  FabricManager fabric(1, 2, &lib_.data_paths());
  Ecu ecu(lib_, fabric);
  const auto placements =
      fabric.install({{fg2_ise_, kernel_, lib_.ise(fg2_ise_).data_paths}}, 0);
  ecu.begin_block(placements, 0);
  ecu.execute(kernel_, 0);                    // RISC
  ecu.execute(kernel_, 100);                  // monoCG
  ecu.execute(kernel_, fg_cost() + 10);       // intermediate
  ecu.execute(kernel_, 2 * fg_cost() + 10);   // full
  const EcuStats& stats = ecu.stats();
  EXPECT_EQ(stats.total_executions(), 4u);
  EXPECT_EQ(stats.executions[static_cast<std::size_t>(ImplKind::kRisc)], 1u);
  EXPECT_EQ(stats.executions[static_cast<std::size_t>(ImplKind::kMonoCg)], 1u);
  EXPECT_EQ(
      stats.executions[static_cast<std::size_t>(ImplKind::kIntermediate)], 1u);
  EXPECT_EQ(stats.executions[static_cast<std::size_t>(ImplKind::kFullIse)],
            1u);
  EXPECT_GT(stats.saved_vs_risc, 0u);
  EXPECT_EQ(stats.cycles[static_cast<std::size_t>(ImplKind::kRisc)], 1000u);
}

TEST_F(EcuTest, MonoCgSurvivesBlockBoundary) {
  FabricManager fabric(1, 2, &lib_.data_paths());
  Ecu ecu(lib_, fabric);
  const auto placements =
      fabric.install({{fg2_ise_, kernel_, lib_.ise(fg2_ise_).data_paths}}, 0);
  ecu.begin_block(placements, 0);
  // First execution kicks off the monoCG context load (66 cycles)...
  EXPECT_EQ(ecu.execute(kernel_, 100).impl, ImplKind::kRisc);
  // ...which is ready for the next one.
  EXPECT_EQ(ecu.execute(kernel_, 300).impl, ImplKind::kMonoCg);

  // New block; the same selection is reinstalled (reuse), and the monoCG
  // context is still resident on its fabric: usable immediately.
  const auto again =
      fabric.install({{fg2_ise_, kernel_, lib_.ise(fg2_ise_).data_paths}},
                     1000);
  ecu.begin_block(again, 1000);
  EXPECT_EQ(ecu.execute(kernel_, 1001).impl, ImplKind::kMonoCg);
}

TEST_F(EcuTest, ResetClearsStateAndStats) {
  FabricManager fabric(1, 2, &lib_.data_paths());
  Ecu ecu(lib_, fabric);
  ecu.begin_block({}, 0);
  ecu.execute(kernel_, 0);
  ecu.reset();
  EXPECT_EQ(ecu.stats().total_executions(), 0u);
}

TEST_F(EcuTest, ImplKindNames) {
  EXPECT_STREQ(to_string(ImplKind::kRisc), "RISC");
  EXPECT_STREQ(to_string(ImplKind::kMonoCg), "monoCG");
  EXPECT_STREQ(to_string(ImplKind::kIntermediate), "intermediate");
  EXPECT_STREQ(to_string(ImplKind::kFullIse), "full-ISE");
  EXPECT_STREQ(to_string(ImplKind::kCoveredIse), "covered-ISE");
}

}  // namespace
}  // namespace mrts
