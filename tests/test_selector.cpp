// Unit tests for the ISE selectors: the Fig. 6 greedy heuristic and the
// branch & bound optimal algorithm, plus the property optimal >= heuristic.

#include <gtest/gtest.h>

#include "isa/ise_builder.h"
#include "rts/selector_heuristic.h"
#include "rts/selector_optimal.h"
#include "util/rng.h"

namespace mrts {
namespace {

/// Library with two kernels:
///  * HOT: data-dominant, many executions, FG2/CG2/MG variants
///  * COLD: control-dominant, few executions
IseLibrary two_kernel_library() {
  IseLibrary lib;
  IseBuildSpec hot;
  hot.kernel_name = "HOT";
  hot.sw_latency = 1000;
  hot.control_fraction = 0.2;
  hot.fg_data_path_names = {"hot_fg1", "hot_fg2"};
  hot.cg_data_path_names = {"hot_cg1", "hot_cg2"};
  build_kernel_ises(lib, hot);

  IseBuildSpec cold;
  cold.kernel_name = "COLD";
  cold.sw_latency = 800;
  cold.control_fraction = 0.8;
  cold.fg_data_path_names = {"cold_fg1", "cold_fg2"};
  cold.cg_data_path_names = {"cold_cg1"};
  build_kernel_ises(lib, cold);
  return lib;
}

TriggerInstruction make_trigger(const IseLibrary& lib, double hot_e,
                                double cold_e) {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("HOT"), hot_e, 500, 50});
  ti.entries.push_back({lib.find_kernel("COLD"), cold_e, 800, 120});
  return ti;
}

TEST(HeuristicSelector, SelectsExactlyOneIsePerKernelWhenFabricAllows) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  ReconfigPlanner planner(lib.data_paths(), 4, 3, 0);
  const SelectionResult r = selector.select(make_trigger(lib, 2000, 500),
                                            planner);
  ASSERT_EQ(r.selected.size(), 2u);
  EXPECT_NE(r.selected[0].kernel, r.selected[1].kernel);
}

TEST(HeuristicSelector, RespectsResourceConstraint) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  for (unsigned prcs = 0; prcs <= 4; ++prcs) {
    for (unsigned cg = 0; cg <= 3; ++cg) {
      ReconfigPlanner planner(lib.data_paths(), prcs, cg, 0);
      const SelectionResult r =
          selector.select(make_trigger(lib, 2000, 500), planner);
      unsigned used_fg = 0;
      unsigned used_cg = 0;
      for (const auto& sel : r.selected) {
        used_fg += lib.ise(sel.ise).fg_units;
        used_cg += lib.ise(sel.ise).cg_units;
      }
      EXPECT_LE(used_fg, prcs);
      EXPECT_LE(used_cg, cg);
    }
  }
}

TEST(HeuristicSelector, NoFabricMeansNoSelection) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  ReconfigPlanner planner(lib.data_paths(), 0, 0, 0);
  const SelectionResult r = selector.select(make_trigger(lib, 2000, 500),
                                            planner);
  EXPECT_TRUE(r.selected.empty());
}

TEST(HeuristicSelector, HotKernelWinsScarceFabric) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  // Only one CG fabric: the kernel with the larger profit contribution (HOT,
  // data-dominant with many executions) must get it.
  ReconfigPlanner planner(lib.data_paths(), 0, 1, 0);
  const SelectionResult r = selector.select(make_trigger(lib, 3000, 50),
                                            planner);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0].kernel, lib.find_kernel("HOT"));
}

TEST(HeuristicSelector, FewExecutionsFavorCgManyFavorFg) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("COLD"), 30, 100, 50});

  ReconfigPlanner planner_small(lib.data_paths(), 4, 3, 0);
  const SelectionResult small = selector.select(ti, planner_small);
  ASSERT_EQ(small.selected.size(), 1u);
  EXPECT_GT(lib.ise(small.selected[0].ise).cg_units, 0u)
      << "30 executions cannot amortize a 1.2 ms FG load";

  ti.entries[0].expected_executions = 200'000;
  ReconfigPlanner planner_large(lib.data_paths(), 4, 3, 0);
  const SelectionResult large = selector.select(ti, planner_large);
  ASSERT_EQ(large.selected.size(), 1u);
  EXPECT_GT(lib.ise(large.selected[0].ise).fg_units, 0u)
      << "a control kernel with 200k executions amortizes the FG fabric";
}

TEST(HeuristicSelector, CoveredVariantsArePrunedNotSelected) {
  // One kernel; once FG2 is selected, FG1 (a prefix) is covered and must
  // appear in `covered`, not selected for another kernel slot.
  IseLibrary lib;
  IseBuildSpec spec;
  spec.kernel_name = "K";
  spec.sw_latency = 1000;
  spec.control_fraction = 0.5;
  spec.fg_data_path_names = {"fg1", "fg2"};
  spec.cg_data_path_names = {};
  spec.build_mg_variants = false;
  spec.mono_cg_speedup = 0.0;
  build_kernel_ises(lib, spec);

  // Two kernels sharing the same data paths: selecting K's FG2 covers L's
  // FG variants entirely.
  IseBuildSpec shared = spec;
  shared.kernel_name = "L";
  build_kernel_ises(lib, shared);

  HeuristicSelector selector(lib);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("K"), 100'000, 100, 10});
  ti.entries.push_back({lib.find_kernel("L"), 100'000, 100, 10});
  ReconfigPlanner planner(lib.data_paths(), 2, 0, 0);
  const SelectionResult r = selector.select(ti, planner);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_FALSE(r.covered.empty());
  // The other kernel's variants were covered by the shared data paths.
  bool other_covered = false;
  for (const auto& [k, ise] : r.covered) {
    if (k != r.selected[0].kernel) other_covered = true;
  }
  EXPECT_TRUE(other_covered);
}

TEST(HeuristicSelector, DeterministicAcrossRuns) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  ReconfigPlanner planner(lib.data_paths(), 3, 2, 0);
  const SelectionResult a = selector.select(make_trigger(lib, 1234, 567),
                                            planner);
  const SelectionResult b = selector.select(make_trigger(lib, 1234, 567),
                                            planner);
  ASSERT_EQ(a.selected.size(), b.selected.size());
  for (std::size_t i = 0; i < a.selected.size(); ++i) {
    EXPECT_EQ(a.selected[i].ise, b.selected[i].ise);
  }
}

TEST(HeuristicSelector, OverheadModelCountsEvaluations) {
  const IseLibrary lib = two_kernel_library();
  SelectorCostModel cost;
  HeuristicSelector selector(lib, cost);
  ReconfigPlanner planner(lib.data_paths(), 4, 3, 0);
  const SelectionResult r = selector.select(make_trigger(lib, 2000, 500),
                                            planner);
  EXPECT_GT(r.profit_evaluations, 0u);
  EXPECT_GE(r.first_round_evaluations, 1u);
  EXPECT_LE(r.first_round_evaluations, r.profit_evaluations);
  EXPECT_EQ(r.overhead_cycles,
            cost.cost(r.profit_evaluations, r.candidates_scanned));
}

TEST(OptimalSelector, MatchesHeuristicOnTrivialProblem) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector heuristic(lib);
  OptimalSelector optimal(lib);
  // Plenty of fabric: both should pick the per-kernel best.
  ReconfigPlanner p1(lib.data_paths(), 8, 8, 0);
  ReconfigPlanner p2(lib.data_paths(), 8, 8, 0);
  const SelectionResult h = heuristic.select(make_trigger(lib, 2000, 500), p1);
  const SelectionResult o = optimal.select(make_trigger(lib, 2000, 500), p2);
  EXPECT_NEAR(h.total_profit, o.total_profit,
              0.01 * std::max(1.0, o.total_profit));
}

TEST(OptimalSelector, NeverWorseThanHeuristic) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector heuristic(lib);
  OptimalSelector optimal(lib);
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const double hot_e = static_cast<double>(rng.uniform_int(10, 5000));
    const double cold_e = static_cast<double>(rng.uniform_int(10, 5000));
    const auto prcs = static_cast<unsigned>(rng.uniform_int(0, 4));
    const auto cg = static_cast<unsigned>(rng.uniform_int(0, 3));
    ReconfigPlanner p1(lib.data_paths(), prcs, cg, 0);
    ReconfigPlanner p2(lib.data_paths(), prcs, cg, 0);
    const TriggerInstruction ti = make_trigger(lib, hot_e, cold_e);
    const SelectionResult h = heuristic.select(ti, p1);
    const SelectionResult o = optimal.select(ti, p2);
    EXPECT_GE(o.total_profit, h.total_profit - 1e-6)
        << "prcs=" << prcs << " cg=" << cg << " hot=" << hot_e
        << " cold=" << cold_e;
  }
}

TEST(OptimalSelector, RespectsResourceConstraint) {
  const IseLibrary lib = two_kernel_library();
  OptimalSelector optimal(lib);
  ReconfigPlanner planner(lib.data_paths(), 2, 1, 0);
  const SelectionResult r = optimal.select(make_trigger(lib, 2000, 500),
                                           planner);
  unsigned used_fg = 0;
  unsigned used_cg = 0;
  for (const auto& sel : r.selected) {
    used_fg += lib.ise(sel.ise).fg_units;
    used_cg += lib.ise(sel.ise).cg_units;
  }
  EXPECT_LE(used_fg, 2u);
  EXPECT_LE(used_cg, 1u);
  EXPECT_LE(r.selected.size(), 2u);
}

TEST(HeuristicSelector, TraceExplainsEveryDecision) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  ReconfigPlanner planner(lib.data_paths(), 2, 1, 0);
  std::string trace;
  const SelectionResult r =
      selector.select_with_trace(make_trigger(lib, 2000, 500), planner, trace);
  EXPECT_NE(trace.find("candidate list:"), std::string::npos);
  EXPECT_NE(trace.find("round 1:"), std::string::npos);
  for (const auto& sel : r.selected) {
    EXPECT_NE(trace.find("selected " + lib.ise(sel.ise).name),
              std::string::npos)
        << trace;
  }
  // The trace and the plain API must agree.
  ReconfigPlanner planner2(lib.data_paths(), 2, 1, 0);
  const SelectionResult plain =
      selector.select(make_trigger(lib, 2000, 500), planner2);
  ASSERT_EQ(plain.selected.size(), r.selected.size());
  for (std::size_t i = 0; i < plain.selected.size(); ++i) {
    EXPECT_EQ(plain.selected[i].ise, r.selected[i].ise);
  }
}

TEST(HeuristicSelector, DensityPolicyAvoidsResourceHogging) {
  // Two kernels with similar weights on a 2-PRC machine: the max-profit
  // policy gives both PRCs to one kernel's FG2; the density policy spreads
  // two FG1 variants — which here has the higher combined profit.
  IseLibrary lib;
  for (const char* name : {"P", "Q"}) {
    IseBuildSpec spec;
    spec.kernel_name = name;
    spec.sw_latency = 1000;
    spec.control_fraction = 0.5;
    spec.fg_data_path_names = {std::string(name) + "_fg1",
                               std::string(name) + "_fg2"};
    spec.cg_data_path_names = {};
    spec.build_mg_variants = false;
    spec.mono_cg_speedup = 0.0;
    build_kernel_ises(lib, spec);
  }
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("P"), 50'000, 100, 20});
  ti.entries.push_back({lib.find_kernel("Q"), 48'000, 100, 20});

  HeuristicSelector max_profit(lib);
  ReconfigPlanner p1(lib.data_paths(), 2, 0, 0);
  const SelectionResult greedy = max_profit.select(ti, p1);

  HeuristicSelector density(lib, SelectorCostModel{},
                            SelectionPolicy::kMaxProfitDensity);
  ReconfigPlanner p2(lib.data_paths(), 2, 0, 0);
  const SelectionResult spread = density.select(ti, p2);

  ASSERT_EQ(greedy.selected.size(), 1u);  // FG2 hogs both PRCs
  ASSERT_EQ(spread.selected.size(), 2u);  // one FG1 per kernel
  EXPECT_GT(spread.total_profit, greedy.total_profit);
}

TEST(HeuristicSelector, WorkIsLinearInCandidates) {
  // Section 4.1's O(N*M): profit evaluations are bounded by one evaluation
  // per candidate per committed round, i.e. <= N * (N*M).
  for (unsigned kernels : {2u, 6u}) {
    IseLibrary lib;
    for (unsigned k = 0; k < kernels; ++k) {
      IseBuildSpec spec;
      spec.kernel_name = "N" + std::to_string(k);
      spec.sw_latency = 700;
      spec.control_fraction = 0.4;
      spec.fg_data_path_names = {spec.kernel_name + "_f1",
                                 spec.kernel_name + "_f2",
                                 spec.kernel_name + "_f3"};
      spec.cg_data_path_names = {spec.kernel_name + "_c1",
                                 spec.kernel_name + "_c2"};
      spec.fg_control_dps = 3;
      spec.cg_data_dps = 2;
      build_kernel_ises(lib, spec);
    }
    TriggerInstruction ti;
    ti.functional_block = FunctionalBlockId{0};
    for (const auto& kernel : lib.kernels()) {
      ti.entries.push_back({kernel.id, 5000.0, 400, 100});
    }
    const std::size_t m = lib.kernel(KernelId{0}).ises.size();
    HeuristicSelector selector(lib);
    ReconfigPlanner planner(lib.data_paths(), 6, 4, 0);
    const SelectionResult r = selector.select(ti, planner);
    EXPECT_LE(r.profit_evaluations,
              static_cast<std::uint64_t>(kernels) * kernels * m);
    EXPECT_GE(r.profit_evaluations, static_cast<std::uint64_t>(m));
  }
}

TEST(OptimalSelector, CountsCombinations) {
  const IseLibrary lib = two_kernel_library();
  OptimalSelector optimal(lib);
  ReconfigPlanner planner(lib.data_paths(), 8, 8, 0);
  optimal.select(make_trigger(lib, 2000, 500), planner);
  EXPECT_GT(optimal.last_combinations(), 0u);
}

}  // namespace
}  // namespace mrts
