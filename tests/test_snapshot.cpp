// Whole-runtime checkpoint/restore (rts/snapshot.h, format mrts.snapshot.v1):
// a restored run must be bit-identical to the uninterrupted one — cycles,
// trace events, counters and fault statistics — and malformed bytes must
// never crash or partially mutate a live runtime.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "rts/mrts.h"
#include "rts/snapshot.h"
#include "sim/app_simulator.h"
#include "util/counters.h"
#include "util/rng.h"
#include "util/snapshot_io.h"
#include "util/trace.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

std::string jsonl(const TraceRecorder& rec) {
  std::ostringstream os;
  write_trace_jsonl(os, rec.events());
  return os.str();
}

/// One faulty observed run, stoppable mid-flight: everything the split-run
/// tests need to compare against the uninterrupted execution.
struct ObservedRun {
  H264Application app;
  MRtsConfig config;
  MRts rts;
  TraceRecorder rec;
  CounterRegistry ctr;
  AppRunProgress progress;

  static MRtsConfig faulty_config() {
    MRtsConfig c;
    c.fault = FaultModelConfig::uniform(0.05, 7);
    return c;
  }

  ObservedRun()
      : app(build_h264_application([] {
          H264AppParams p;
          p.frames = 2;
          return p;
        }())),
        config(faulty_config()),
        rts(app.library, 1, 4, config) {
    rts.attach_observability(&rec, &ctr);
  }

  /// Runs until the cycle cursor passes \p stop (kNeverCycles = to the end).
  bool run(Cycles stop = kNeverCycles) {
    return run_application_portion(rts, app.trace, progress, &rec, stop);
  }
};

CheckpointMeta test_meta() {
  CheckpointMeta meta;
  meta.app = "h264";
  meta.prcs = 4;
  meta.cg = 1;
  meta.frames = 2;
  meta.fault = ObservedRun::faulty_config().fault;
  meta.trace_path = "out/trace.jsonl";
  meta.report_path = "out/report.csv";
  meta.checkpoint_every = 123456;
  meta.checkpoint_path = "out/run.snapshot";
  meta.sequence = 3;
  return meta;
}

TEST(Snapshot, MetaHeaderRoundTrips) {
  ObservedRun run;
  const CheckpointMeta meta = test_meta();
  const std::vector<std::uint8_t> bytes =
      build_snapshot(meta, run.rts, run.progress, &run.rec, &run.ctr);
  const CheckpointMeta back = read_snapshot_meta(bytes);
  EXPECT_EQ(back.app, meta.app);
  EXPECT_EQ(back.prcs, meta.prcs);
  EXPECT_EQ(back.cg, meta.cg);
  EXPECT_EQ(back.frames, meta.frames);
  EXPECT_EQ(back.fault.seed, meta.fault.seed);
  EXPECT_DOUBLE_EQ(back.fault.fg_load_failure_prob,
                   meta.fault.fg_load_failure_prob);
  EXPECT_EQ(back.fault.max_retries, meta.fault.max_retries);
  EXPECT_EQ(back.trace_path, meta.trace_path);
  EXPECT_EQ(back.report_path, meta.report_path);
  EXPECT_EQ(back.checkpoint_every, meta.checkpoint_every);
  EXPECT_EQ(back.checkpoint_path, meta.checkpoint_path);
  EXPECT_EQ(back.sequence, meta.sequence);
}

TEST(Snapshot, SplitRunEqualsWholeRunWithFaults) {
  // Reference: the uninterrupted observed run.
  ObservedRun whole;
  ASSERT_TRUE(whole.run());
  ASSERT_GT(whole.progress.partial.total_cycles, 0u);

  // Checkpointed run: stop near the middle, snapshot, throw the process
  // state away (fresh MRts + streams) and restore.
  ObservedRun half;
  ASSERT_FALSE(half.run(whole.progress.partial.total_cycles / 2));
  ASSERT_TRUE(half.progress.started());
  const std::vector<std::uint8_t> bytes = build_snapshot(
      test_meta(), half.rts, half.progress, &half.rec, &half.ctr);

  ObservedRun resumed;
  apply_snapshot(bytes, resumed.rts, resumed.progress, &resumed.rec,
                 &resumed.ctr);
  ASSERT_TRUE(resumed.progress.started());
  ASSERT_TRUE(resumed.run());

  // Bit-identical resume: cycles, per-block latencies, trace, counters.
  EXPECT_EQ(resumed.progress.partial.total_cycles,
            whole.progress.partial.total_cycles);
  EXPECT_EQ(resumed.progress.partial.block_cycles,
            whole.progress.partial.block_cycles);
  EXPECT_EQ(resumed.progress.partial.impl_executions,
            whole.progress.partial.impl_executions);
  EXPECT_EQ(jsonl(resumed.rec), jsonl(whole.rec));
  EXPECT_EQ(resumed.ctr.counters(), whole.ctr.counters());

  // Satellite: fault statistics and the fault RNG stream resume exactly —
  // the restored run draws the same faults the uninterrupted one did.
  ASSERT_NE(whole.rts.fault_model(), nullptr);
  ASSERT_NE(resumed.rts.fault_model(), nullptr);
  const FaultStats& a = whole.rts.fault_model()->stats();
  const FaultStats& b = resumed.rts.fault_model()->stats();
  EXPECT_EQ(b.injected, a.injected);
  EXPECT_EQ(b.load_failures, a.load_failures);
  EXPECT_EQ(b.retries, a.retries);
  EXPECT_EQ(b.failed_loads, a.failed_loads);
  EXPECT_EQ(b.transient_upsets, a.transient_upsets);
  EXPECT_EQ(b.scrub_repairs, a.scrub_repairs);
  EXPECT_EQ(b.quarantined_prcs, a.quarantined_prcs);
  EXPECT_EQ(b.quarantined_cg, a.quarantined_cg);
}

TEST(Snapshot, RestoreMarkerIsOptInOnly) {
  ObservedRun half;
  ASSERT_FALSE(half.run(1'000'000));
  const std::vector<std::uint8_t> bytes = build_snapshot(
      test_meta(), half.rts, half.progress, &half.rec, &half.ctr);

  ObservedRun resumed;
  TraceRecorder marker;
  apply_snapshot(bytes, resumed.rts, resumed.progress, &resumed.rec,
                 &resumed.ctr, &marker);
  // The resumed recorder holds exactly the checkpointed prefix (no
  // kSnapshotRestore pollution — that would break trace bit-identity); the
  // side-channel marker recorder gets the one restore event.
  EXPECT_EQ(jsonl(resumed.rec), jsonl(half.rec));
  ASSERT_EQ(marker.events().size(), 1u);
  EXPECT_EQ(marker.events()[0].kind, TraceEventKind::kSnapshotRestore);
}

TEST(Snapshot, EveryTruncationIsRejectedWithoutMutation) {
  ObservedRun half;
  ASSERT_FALSE(half.run(1'000'000));
  const std::vector<std::uint8_t> bytes = build_snapshot(
      test_meta(), half.rts, half.progress, &half.rec, &half.ctr);
  ASSERT_GT(bytes.size(), 24u);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + len);
    EXPECT_THROW(read_snapshot_meta(prefix), SnapshotError)
        << "prefix of " << len << " bytes must be rejected";
  }

  // A truncated apply must leave the runtime untouched: the resumed run
  // from the intact image is still bit-identical afterwards.
  ObservedRun resumed;
  const std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + bytes.size() / 2);
  EXPECT_THROW(apply_snapshot(cut, resumed.rts, resumed.progress,
                              &resumed.rec, &resumed.ctr),
               SnapshotError);
  EXPECT_FALSE(resumed.progress.started());
  apply_snapshot(bytes, resumed.rts, resumed.progress, &resumed.rec,
                 &resumed.ctr);
  EXPECT_EQ(resumed.progress.next_block, half.progress.next_block);
}

TEST(Snapshot, SeededByteFlipFuzzNeverCrashes) {
  ObservedRun half;
  ASSERT_FALSE(half.run(1'000'000));
  const std::vector<std::uint8_t> bytes = build_snapshot(
      test_meta(), half.rts, half.progress, &half.rec, &half.ctr);

  Rng rng(0xF1A9);
  ObservedRun victim;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> corrupt = bytes;
    const std::size_t pos = rng.next_below(corrupt.size());
    const std::uint8_t bit =
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    corrupt[pos] ^= bit;
    // Header flips fail magic/version/size checks; any payload flip fails
    // the CRC — validated before anything is touched, so the victim runtime
    // stays pristine through all 200 attacks.
    EXPECT_THROW(read_snapshot_meta(corrupt), SnapshotError)
        << "flip of bit " << int(bit) << " at offset " << pos;
    EXPECT_THROW(apply_snapshot(corrupt, victim.rts, victim.progress,
                                &victim.rec, &victim.ctr),
                 SnapshotError);
    EXPECT_FALSE(victim.progress.started());
  }
  // The pristine victim still accepts the intact image.
  apply_snapshot(bytes, victim.rts, victim.progress, &victim.rec,
                 &victim.ctr);
  EXPECT_EQ(victim.progress.next_block, half.progress.next_block);
}

TEST(Snapshot, ErrorsNameTheFailingOffset) {
  ObservedRun run;
  std::vector<std::uint8_t> bytes = build_snapshot(
      test_meta(), run.rts, run.progress, &run.rec, &run.ctr);

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[3] ^= 0xFF;
  try {
    read_snapshot_meta(bad_magic);
    FAIL() << "bad magic must throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.offset(), 3u);
    EXPECT_NE(std::string(e.what()).find("offset 3"), std::string::npos);
  }

  std::vector<std::uint8_t> bad_version = bytes;
  bad_version[8] = 0x7F;  // version lives at [8..12)
  try {
    read_snapshot_meta(bad_version);
    FAIL() << "unknown version must throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.offset(), 8u);
  }
}

TEST(Snapshot, ApplyRejectsMismatchedRuntimeShape) {
  ObservedRun half;
  ASSERT_FALSE(half.run(1'000'000));
  const std::vector<std::uint8_t> bytes = build_snapshot(
      test_meta(), half.rts, half.progress, &half.rec, &half.ctr);

  // Wrong fabric shape: 2 PRCs instead of the checkpointed 4.
  const H264Application app = build_h264_application([] {
    H264AppParams p;
    p.frames = 2;
    return p;
  }());
  MRts wrong(app.library, 1, 2, ObservedRun::faulty_config());
  TraceRecorder rec;
  CounterRegistry ctr;
  wrong.attach_observability(&rec, &ctr);
  AppRunProgress progress;
  EXPECT_THROW(apply_snapshot(bytes, wrong, progress, &rec, &ctr),
               SnapshotError);
  EXPECT_FALSE(progress.started());
}

TEST(Snapshot, FileRoundTripIsAtomicAndWhole) {
  ObservedRun run;
  const std::vector<std::uint8_t> bytes = build_snapshot(
      test_meta(), run.rts, run.progress, &run.rec, &run.ctr);
  const std::string path = ::testing::TempDir() + "snapshot_roundtrip.bin";
  ASSERT_TRUE(write_snapshot_file(path, bytes));
  std::vector<std::uint8_t> back;
  std::string error;
  ASSERT_TRUE(read_snapshot_file(path, &back, &error)) << error;
  EXPECT_EQ(back, bytes);
  std::remove(path.c_str());

  EXPECT_FALSE(read_snapshot_file(path + ".missing", &back, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace mrts
