// Unit tests for the ReconfigPlanner: hypothetical install schedules shared
// by the selectors and the profit function.

#include <gtest/gtest.h>

#include "arch/fabric_manager.h"
#include "rts/reconfig_plan.h"

namespace mrts {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    DataPathDesc fg1;
    fg1.name = "fg1";
    fg1.grain = Grain::kFine;
    fg1_ = table_.add(fg1);
    DataPathDesc fg2;
    fg2.name = "fg2";
    fg2.grain = Grain::kFine;
    fg2_ = table_.add(fg2);
    DataPathDesc cg1;
    cg1.name = "cg1";
    cg1.grain = Grain::kCoarse;
    cg1.context_instructions = 30;
    cg1_ = table_.add(cg1);
  }

  Cycles fg_cost() const { return table_[fg1_].reconfig_cycles(); }

  DataPathTable table_;
  DataPathId fg1_, fg2_, cg1_;
};

TEST_F(PlannerTest, EmptyFabricSerializesFgLoads) {
  ReconfigPlanner planner(table_, /*total_prcs=*/4, /*total_cg=*/2, /*now=*/0);
  const auto ready = planner.plan({fg1_, fg2_, cg1_});
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[0], fg_cost());
  EXPECT_EQ(ready[1], 2 * fg_cost());
  EXPECT_EQ(ready[2], 60u);  // CG on its own port
}

TEST_F(PlannerTest, PlanDoesNotMutateCommitDoes) {
  ReconfigPlanner planner(table_, 4, 2, 0);
  const auto first = planner.plan({fg1_});
  const auto second = planner.plan({fg1_});
  EXPECT_EQ(first, second);  // plan is pure
  planner.commit({fg1_});
  const auto after = planner.plan({fg2_});
  EXPECT_EQ(after[0], 2 * fg_cost());  // behind the committed load
  EXPECT_EQ(planner.free_prcs(), 3u);
}

TEST_F(PlannerTest, ReusesExistingInstancesOnce) {
  FabricManager fm(1, 2, &table_);
  fm.install({{IseId{0}, KernelId{0}, {fg1_}}}, 0);
  // fg1 is on the fabric (ready at fg_cost()).
  ReconfigPlanner planner(table_, fm, /*now=*/10);
  const auto a = planner.commit({fg1_});
  EXPECT_EQ(a[0], fg_cost());  // reused, keeps its completion time
  // A second instance of fg1 must be loaded fresh.
  const auto b = planner.commit({fg1_});
  EXPECT_GT(b[0], fg_cost());
}

TEST_F(PlannerTest, SnapshotsPortBacklog) {
  FabricManager fm(1, 2, &table_);
  fm.install({{IseId{0}, KernelId{0}, {fg1_}}}, 0);
  ReconfigPlanner planner(table_, fm, /*now=*/100);
  // A fresh FG load waits for the running fg1 bitstream.
  const auto ready = planner.plan({fg2_});
  EXPECT_EQ(ready[0], 2 * fg_cost());
}

TEST_F(PlannerTest, FitsTracksBudget) {
  ReconfigPlanner planner(table_, 2, 1, 0);
  EXPECT_TRUE(planner.fits(2, 1));
  EXPECT_FALSE(planner.fits(3, 0));
  planner.commit({fg1_, cg1_});
  EXPECT_EQ(planner.free_prcs(), 1u);
  EXPECT_EQ(planner.free_cg(), 0u);
  EXPECT_FALSE(planner.fits(0, 1));
  EXPECT_TRUE(planner.fits(1, 0));
}

TEST_F(PlannerTest, CoveredByCommittedUsesMultiplicity) {
  ReconfigPlanner planner(table_, 4, 2, 0);
  planner.commit({fg1_, cg1_});
  EXPECT_TRUE(planner.covered_by_committed({fg1_}));
  EXPECT_TRUE(planner.covered_by_committed({cg1_, fg1_}));
  EXPECT_FALSE(planner.covered_by_committed({fg1_, fg1_}));  // needs 2
  EXPECT_FALSE(planner.covered_by_committed({fg2_}));
  planner.commit({fg1_});
  EXPECT_TRUE(planner.covered_by_committed({fg1_, fg1_}));
}

TEST_F(PlannerTest, UniformReconfigOverridePricesCgLikeFg) {
  ReconfigPlanner planner(table_, 4, 2, 0);
  planner.set_uniform_reconfig_cycles(fg_cost());
  const auto ready = planner.plan({cg1_});
  // The RISPP-style cost model claims the CG context takes an FG-scale load.
  EXPECT_EQ(ready[0], fg_cost());
}

TEST_F(PlannerTest, NowOffsetsSchedules) {
  ReconfigPlanner planner(table_, 4, 2, /*now=*/5000);
  const auto ready = planner.plan({cg1_});
  EXPECT_EQ(ready[0], 5060u);
}

TEST_F(PlannerTest, CopySemanticsForBranchAndBound) {
  ReconfigPlanner planner(table_, 2, 2, 0);
  ReconfigPlanner copy = planner;
  copy.commit({fg1_});
  EXPECT_EQ(planner.free_prcs(), 2u);  // original untouched
  EXPECT_EQ(copy.free_prcs(), 1u);
}

}  // namespace
}  // namespace mrts
