// Unit tests for the CG-fabric executor: 80-bit encoding, zero-overhead
// loops, timing (1/2/10-cycle ops), context-memory limits and the CG kernel
// context programs.

#include <gtest/gtest.h>

#include "cgsim/cg_assembler.h"
#include "cgsim/cg_executor.h"
#include "cgsim/cg_kernel_programs.h"
#include "util/rng.h"

namespace mrts::cgsim {
namespace {

CgRunResult run(CgExecutor& exec, const std::string& asm_text) {
  return exec.run(cg_assemble("test", asm_text));
}

TEST(CgIsa, InstructionEncodesToExactlyTenBytes) {
  CgInstr in;
  in.op = CgOp::kMac;
  in.rd = 10;
  in.rs1 = 33;
  in.rs2 = 63;
  in.imm = -123456;
  in.aux = 7;
  const auto word = in.encode();
  static_assert(sizeof(word) == 10, "80-bit instruction");
  EXPECT_EQ(CgInstr::decode(word), in);
}

TEST(CgIsa, DecodeRejectsBadOpcode) {
  std::array<std::uint8_t, 10> word{};
  word[0] = 0xff;
  EXPECT_THROW(CgInstr::decode(word), std::invalid_argument);
}

TEST(CgIsa, ContextProgramStreamSize) {
  const CgContextProgram& p = cg_kernel_program("simd_absdiff");
  EXPECT_EQ(p.stream_bytes(), p.code.size() * 10);
  EXPECT_LE(p.code.size(), kCgContextMemoryInstructions);
}

TEST(CgAssembler, RejectsOverlongProgram) {
  std::string src;
  for (int i = 0; i < 33; ++i) src += "nop\n";
  EXPECT_THROW(cg_assemble("too-long", src), std::invalid_argument);
}

TEST(CgAssembler, RejectsUnbalancedLoops) {
  EXPECT_THROW(cg_assemble("x", "loop 4\nadd r1, r2, r3\n"),
               std::invalid_argument);
  EXPECT_THROW(cg_assemble("x", "endl\n"), std::invalid_argument);
  EXPECT_THROW(cg_assemble("x", "loop 4\nendl\n"), std::invalid_argument);
}

TEST(CgExecutor, BasicAluAndTiming) {
  CgExecutor exec;
  const CgRunResult r = run(exec, R"(
    movi r1, 6
    movi r2, 7
    mul  r3, r1, r2
    div  r4, r3, r1
    add  r5, r3, r4
    halt
  )");
  EXPECT_EQ(exec.reg(3), 42u);
  EXPECT_EQ(exec.reg(4), 7u);
  EXPECT_EQ(exec.reg(5), 49u);
  // movi(1)+movi(1)+mul(2)+div(10)+add(1)+halt(1) = 16.
  EXPECT_EQ(r.cycles, 16u);
}

TEST(CgExecutor, MacAccumulates) {
  CgExecutor exec;
  run(exec, R"(
    movi r1, 3
    movi r2, 4
    movi r10, 100
    mac  r10, r1, r2
    mac  r10, r1, r2
    halt
  )");
  EXPECT_EQ(exec.reg(10), 124u);
}

TEST(CgExecutor, ZeroOverheadLoopRunsExactCount) {
  CgExecutor exec;
  const CgRunResult r = run(exec, R"(
    movi r1, 0
    loop 10
      addi r1, r1, 1
    endl
    halt
  )");
  EXPECT_EQ(exec.reg(1), 10u);
  // movi(1) + loop setup(1) + 10 * addi(1) + halt(1) = 13 cycles:
  // iterations cost nothing beyond their body (zero-overhead loop).
  EXPECT_EQ(r.cycles, 13u);
}

TEST(CgExecutor, NestedLoopsUpToHardwareDepth) {
  CgExecutor exec;
  run(exec, R"(
    movi r1, 0
    loop 3
      loop 4
        addi r1, r1, 1
      endl
    endl
    halt
  )");
  EXPECT_EQ(exec.reg(1), 12u);
}

TEST(CgExecutor, ThirdLoopLevelThrows) {
  CgExecutor exec;
  EXPECT_THROW(run(exec, R"(
    loop 2
      loop 2
        loop 2
          nop
        endl
      endl
    endl
    halt
  )"),
               std::runtime_error);
}

TEST(CgExecutor, ZeroTripLoopSkipsBody) {
  CgExecutor exec;
  run(exec, R"(
    movi r1, 5
    loop 0
      movi r1, 99
    endl
    halt
  )");
  EXPECT_EQ(exec.reg(1), 5u);
}

TEST(CgExecutor, FallingOffContextEndHalts) {
  CgExecutor exec;
  const CgRunResult r = run(exec, "movi r1, 1\n");
  EXPECT_TRUE(r.halted);
}

TEST(CgExecutor, MemoryRoundTrip) {
  CgExecutor exec;
  run(exec, R"(
    movi r1, 64
    movi r2, 777
    st   [r1+0], r2
    ld   r3, [r1+0]
    halt
  )");
  EXPECT_EQ(exec.reg(3), 777u);
}

TEST(CgExecutor, DivisionByZeroThrows) {
  CgExecutor exec;
  EXPECT_THROW(run(exec, "movi r1, 1\ndiv r2, r1, r0\nhalt\n"),
               std::runtime_error);
}

TEST(CgKernelPrograms, AllFitContextMemoryAndHalt) {
  for (const auto& name : cg_kernel_program_names()) {
    const CgContextProgram& p = cg_kernel_program(name);
    EXPECT_LE(p.code.size(), kCgContextMemoryInstructions) << name;
    const CgRunResult r = measure_cg_kernel(name);
    EXPECT_TRUE(r.halted) << name;
    EXPECT_GT(r.cycles, 0u) << name;
  }
}

TEST(CgKernelPrograms, SimdAbsdiffMatchesReference) {
  CgExecutor exec;
  Rng rng(11);
  std::uint32_t mem[512];
  for (std::size_t i = 0; i < 512; ++i) {
    mem[i] = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
    exec.memory().write32(4 * i, mem[i]);
  }
  std::uint32_t expected = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const auto a = static_cast<std::int32_t>(mem[i]);
    const auto b = static_cast<std::int32_t>(mem[64 + i]);  // 0x100 / 4
    expected += static_cast<std::uint32_t>(a > b ? a - b : b - a);
  }
  exec.run(cg_kernel_program("simd_absdiff"));
  EXPECT_EQ(exec.reg(10), expected);
}

TEST(CgKernelPrograms, CgIsFasterThanRiscPerWorkItem) {
  // The point of the CG fabric: the SAD inner loop costs far fewer cycles
  // than on the core (ZOL + wide ALU ops). The CG program handles 16 pairs.
  const CgRunResult cg = measure_cg_kernel("simd_absdiff");
  EXPECT_LT(cg.cycles, 200u);
}

TEST(CgKernelPrograms, UnknownNameThrows) {
  EXPECT_THROW(cg_kernel_program("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace mrts::cgsim
