// Tests for the toy compile-time ISE identification pass: profiling
// classification and the derived build specifications.

#include <gtest/gtest.h>

#include "isa/ise_identify.h"
#include "riscsim/assembler.h"
#include "riscsim/kernel_programs.h"
#include "util/rng.h"

namespace mrts {
namespace {

riscsim::Cpu cpu_with_random_memory(std::uint64_t seed = 7) {
  riscsim::Cpu cpu;
  Rng rng(seed);
  for (std::size_t addr = 0; addr < 2048; ++addr) {
    cpu.memory().write8(addr, static_cast<std::uint8_t>(rng.next_below(256)));
  }
  return cpu;
}

TEST(ProfileKernelRun, ClassifiesPureControlLoop) {
  // A loop of compares/branches/shifts: nearly all control cycles.
  riscsim::Cpu cpu;
  const auto program = riscsim::assemble(R"(
      movi r1, 64
    loop:
      andi r2, r1, 1
      slli r3, r2, 2
      xor  r4, r3, r1
      subi r1, r1, 1
      bne  r1, r0, loop
      halt
  )");
  const auto run = cpu.run(program);
  const KernelProfile profile = profile_kernel_run(run);
  EXPECT_GT(profile.control_cycle_fraction, 0.6);
  EXPECT_DOUBLE_EQ(profile.mul_div_cycle_fraction, 0.0);
}

TEST(ProfileKernelRun, ClassifiesMultiplyHeavyLoop) {
  riscsim::Cpu cpu;
  const auto program = riscsim::assemble(R"(
      movi r1, 32
      movi r5, 3
    loop:
      mul  r2, r1, r5
      mul  r3, r2, r5
      add  r4, r4, r3
      subi r1, r1, 1
      bne  r1, r0, loop
      halt
  )");
  const auto run = cpu.run(program);
  const KernelProfile profile = profile_kernel_run(run);
  // Two 4-cycle multiplies dominate the 1-cycle bookkeeping.
  EXPECT_GT(profile.mul_div_cycle_fraction, 0.5);
  EXPECT_LT(profile.control_cycle_fraction, 0.3);
}

TEST(IdentifyIseSpec, ControlKernelGetsFgLeaningSpec) {
  riscsim::Cpu cpu = cpu_with_random_memory();
  const IseBuildSpec spec = identify_ise_spec(
      "DEBLOCK", riscsim::kernel_program("deblock_edge"), cpu);
  EXPECT_EQ(spec.kernel_name, "DEBLOCK");
  EXPECT_GT(spec.sw_latency, 0u);
  // The deblocking edge filter mixes branching/clipping with adds: a
  // moderate-to-high control fraction.
  EXPECT_GT(spec.control_fraction, 0.3);
  EXPECT_GT(spec.fg_control_speedup, spec.cg_control_speedup);
  EXPECT_FALSE(spec.fg_data_path_names.empty());
  EXPECT_FALSE(spec.cg_data_path_names.empty());
}

TEST(IdentifyIseSpec, SpecFeedsDirectlyIntoBuilder) {
  riscsim::Cpu cpu = cpu_with_random_memory();
  const IseBuildSpec spec =
      identify_ise_spec("SAD", riscsim::kernel_program("sad_4x4"), cpu);
  IseLibrary lib;
  const KernelId k = build_kernel_ises(lib, spec);
  EXPECT_FALSE(lib.kernel(k).ises.empty());
  EXPECT_TRUE(lib.kernel(k).has_mono_cg());
  // The identified RISC latency matches a fresh measurement.
  EXPECT_EQ(lib.kernel(k).sw_latency,
            riscsim::measure_kernel("sad_4x4").cycles);
}

TEST(IdentifyIseSpec, DistinctKernelsGetDistinctCharacter) {
  riscsim::Cpu cpu1 = cpu_with_random_memory();
  const IseBuildSpec quant =
      identify_ise_spec("QUANT", riscsim::kernel_program("quant_16"), cpu1);
  riscsim::Cpu cpu2 = cpu_with_random_memory();
  const IseBuildSpec zigzag =
      identify_ise_spec("ZIGZAG", riscsim::kernel_program("zigzag_16"), cpu2);
  // quant_16 is multiply-heavy; zigzag_16 is pure data movement + bit ops.
  EXPECT_GT(quant.cg_data_speedup, zigzag.cg_data_speedup);
}

TEST(IdentifyIseSpec, NonHaltingProgramThrows) {
  riscsim::Cpu cpu;
  const auto endless = riscsim::assemble("l: jmp l\n");
  EXPECT_THROW(identify_ise_spec("X", endless, cpu), std::runtime_error);
}

TEST(RunResult, OpcodeCountsAreExact) {
  riscsim::Cpu cpu;
  const auto program = riscsim::assemble(R"(
      movi r1, 5
    loop:
      subi r1, r1, 1
      bne  r1, r0, loop
      halt
  )");
  const auto run = cpu.run(program);
  EXPECT_EQ(run.count(riscsim::Op::kMovi), 1u);
  EXPECT_EQ(run.count(riscsim::Op::kSubi), 5u);
  EXPECT_EQ(run.count(riscsim::Op::kBne), 5u);
  EXPECT_EQ(run.count(riscsim::Op::kHalt), 1u);
  EXPECT_EQ(run.count(riscsim::Op::kMul), 0u);
}

}  // namespace
}  // namespace mrts
