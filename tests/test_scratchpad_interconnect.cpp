// Unit tests for the scratch-pad memory and interconnect timing models.

#include <gtest/gtest.h>

#include "arch/interconnect.h"
#include "arch/scratchpad.h"

namespace mrts {
namespace {

TEST(Scratchpad, ByteAndWordAccess) {
  Scratchpad mem;
  mem.write32(16, 0xdeadbeef);
  EXPECT_EQ(mem.read32(16), 0xdeadbeefu);
  EXPECT_EQ(mem.read8(16), 0xefu);  // little-endian layout
  EXPECT_EQ(mem.read8(19), 0xdeu);
  mem.write8(16, 0x01);
  EXPECT_EQ(mem.read32(16), 0xdeadbe01u);
}

TEST(Scratchpad, OutOfRangeThrows) {
  ScratchpadParams p;
  p.size_bytes = 16;
  Scratchpad mem(p);
  EXPECT_THROW(mem.read8(16), std::out_of_range);
  EXPECT_THROW(mem.read32(13), std::out_of_range);
  EXPECT_THROW(mem.write32(14, 0), std::out_of_range);
}

TEST(Scratchpad, AccessCountersAndReset) {
  Scratchpad mem;
  mem.write32(0, 1);
  (void)mem.read32(0);
  (void)mem.read8(1);
  EXPECT_EQ(mem.writes(), 1u);
  EXPECT_EQ(mem.reads(), 2u);
  mem.reset();
  EXPECT_EQ(mem.reads(), 0u);
  EXPECT_EQ(mem.read32(0), 0u);
}

TEST(Scratchpad, PortWidthDeterminesBeats) {
  ScratchpadParams cg_port;  // 32-bit port
  cg_port.port_width_bits = 32;
  Scratchpad cg_mem(cg_port);
  EXPECT_EQ(cg_mem.access_cycles(4), 1u);
  EXPECT_EQ(cg_mem.access_cycles(16), 4u);

  ScratchpadParams fg_port;  // the FG fabric has a 128-bit load/store unit
  fg_port.port_width_bits = 128;
  Scratchpad fg_mem(fg_port);
  EXPECT_EQ(fg_mem.access_cycles(16), 1u);
  EXPECT_EQ(fg_mem.access_cycles(17), 2u);
}

TEST(Scratchpad, BadParamsRejected) {
  ScratchpadParams zero;
  zero.size_bytes = 0;
  EXPECT_THROW(Scratchpad bad(zero), std::invalid_argument);
  ScratchpadParams odd;
  odd.port_width_bits = 12;
  EXPECT_THROW(Scratchpad bad(odd), std::invalid_argument);
}

TEST(Interconnect, SameNodeIsFree) {
  Interconnect net;
  const NodeAddr a{NodeKind::kCgFabric, 1};
  EXPECT_EQ(net.transfer_cycles(a, a), 0u);
}

TEST(Interconnect, CgPointToPointChainCosts) {
  // Section 5.1: point-to-point connection between CG fabrics, 2 cycles.
  Interconnect net;
  const NodeAddr cg0{NodeKind::kCgFabric, 0};
  const NodeAddr cg1{NodeKind::kCgFabric, 1};
  const NodeAddr cg3{NodeKind::kCgFabric, 3};
  EXPECT_EQ(net.transfer_cycles(cg0, cg1), 2u);
  EXPECT_EQ(net.transfer_cycles(cg0, cg3), 6u);  // 3 hops
  EXPECT_EQ(net.transfer_cycles(cg3, cg0), 6u);  // symmetric
}

TEST(Interconnect, PrcToPrcIsSingleCycle) {
  // Section 5.1: communication within the FG fabric takes a single cycle.
  Interconnect net;
  const NodeAddr p0{NodeKind::kPrc, 0};
  const NodeAddr p5{NodeKind::kPrc, 5};
  EXPECT_EQ(net.transfer_cycles(p0, p5), 1u);
}

TEST(Interconnect, CrossGrainAndCoreLinks) {
  Interconnect net;
  const NodeAddr core{NodeKind::kCore, 0};
  const NodeAddr cg{NodeKind::kCgFabric, 0};
  const NodeAddr prc{NodeKind::kPrc, 0};
  EXPECT_EQ(net.transfer_cycles(core, cg), 2u);
  EXPECT_EQ(net.transfer_cycles(prc, cg), 3u);
  EXPECT_EQ(net.transfer_cycles(cg, prc), 3u);
}

TEST(Interconnect, DefaultCoreDistanceIsFlat) {
  // The legacy flat model: every core one hop out, zero extra cycles — the
  // CMP degenerate case rides on this (sim/cmp.h).
  Interconnect net;
  EXPECT_EQ(net.core_distance(0), 1u);
  EXPECT_EQ(net.core_distance(17), 1u);
  EXPECT_EQ(net.core_extra_cycles(0), 0u);
  EXPECT_EQ(net.core_extra_cycles(17), 0u);
}

TEST(Interconnect, PerCoreHopDistancesScaleTheCoreLink) {
  InterconnectParams p;
  p.core_hop_distance = {1, 3};
  Interconnect net(p);
  const NodeAddr cg{NodeKind::kCgFabric, 0};
  EXPECT_EQ(net.core_distance(0), 1u);
  EXPECT_EQ(net.core_distance(1), 3u);
  EXPECT_EQ(net.transfer_cycles({NodeKind::kCore, 0}, cg), 2u);
  EXPECT_EQ(net.transfer_cycles({NodeKind::kCore, 1}, cg), 6u);
  EXPECT_EQ(net.core_extra_cycles(0), 0u);
  EXPECT_EQ(net.core_extra_cycles(1), 4u);  // core_link * (distance - 1)
  // Core <-> core traverses both chains.
  EXPECT_EQ(net.transfer_cycles({NodeKind::kCore, 0}, {NodeKind::kCore, 1}),
            8u);
}

TEST(Interconnect, CoresBeyondTheVectorContinueTheChain) {
  InterconnectParams p;
  p.core_hop_distance = {2, 4};
  Interconnect net(p);
  EXPECT_EQ(net.core_distance(2), 5u);  // back() + 1
  EXPECT_EQ(net.core_distance(4), 7u);  // one extra hop per index
}

TEST(Interconnect, LinearChainFactory) {
  const InterconnectParams flat = InterconnectParams::linear_chain(3, 0);
  EXPECT_EQ(flat.core_hop_distance, (std::vector<unsigned>{1, 1, 1}));
  const InterconnectParams stride2 = InterconnectParams::linear_chain(3, 2);
  EXPECT_EQ(stride2.core_hop_distance, (std::vector<unsigned>{1, 3, 5}));
}

TEST(Interconnect, ZeroHopDistanceRejected) {
  InterconnectParams p;
  p.core_hop_distance = {1, 0};
  EXPECT_THROW(Interconnect bad(p), std::invalid_argument);
}

TEST(Interconnect, PipelineSumsAdjacentTransfers) {
  Interconnect net;
  const std::vector<NodeAddr> chain = {
      {NodeKind::kCore, 0}, {NodeKind::kCgFabric, 0}, {NodeKind::kCgFabric, 2}};
  EXPECT_EQ(net.pipeline_cycles(chain), 2u + 4u);
  EXPECT_EQ(net.pipeline_cycles({}), 0u);
}

}  // namespace
}  // namespace mrts
