// Tests for the socket-free serving layer: ServeCore job lifecycle
// (admission, FIFO execution, exactly-once report delivery, cancel
// semantics, job-log replay identity) and the Session protocol state
// machine driven purely with byte strings — the HELLO gate, version
// negotiation, error-code selection, DISCONNECT accounting, fatal-framing
// teardown and garbage-byte survival of docs/PROTOCOL.md.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/serve_core.h"
#include "serve/session.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace mrts::serve {
namespace {

/// Small resident shape so each job simulates in well under a second.
ServeConfig small_config() {
  ServeConfig config;
  config.prcs = 4;
  config.cg = 1;
  config.job_classes = 2;
  config.max_blocks = 8;
  config.macroblocks = 4;
  config.max_queue = 8;
  return config;
}

SubmitFrame weighted_job(const std::string& name, std::uint64_t seed) {
  SubmitFrame spec;
  spec.name = name;
  spec.share = static_cast<std::uint8_t>(WireShare::kWeighted);
  spec.weight = 2;
  spec.job_class = 1;
  spec.blocks = 1;
  spec.seed = seed;
  return spec;
}

// ---------------------------------------------------------------------------
// ServeCore
// ---------------------------------------------------------------------------

TEST(ServeCore, SubmitRunStatusDeliversReportExactlyOnce) {
  ServeCore core(small_config());
  const std::uint64_t id = core.submit(1, weighted_job("t1", 42));
  ASSERT_EQ(id, 1u);
  ASSERT_EQ(core.job(id)->state, JobState::kQueued);
  EXPECT_EQ(core.queue_depth(), 1u);

  EXPECT_TRUE(core.run_next());
  EXPECT_EQ(core.job(id)->state, JobState::kDone);
  EXPECT_EQ(core.queue_depth(), 0u);
  EXPECT_GT(core.clock(), 0u);

  JobStatusFrame first;
  ASSERT_TRUE(core.status(id, &first));
  EXPECT_EQ(first.state, static_cast<std::uint8_t>(WireJobState::kDone));
  EXPECT_EQ(first.report_included, 1);
  EXPECT_NE(first.report_json.find("mrts.run_report.v1"), std::string::npos);
  EXPECT_FALSE(first.counters_delta.empty());
  EXPECT_EQ(first.latency_cycles, first.finished_at - first.admitted_at);

  // Second poll: metadata repeats, the report was freed after delivery.
  JobStatusFrame second;
  ASSERT_TRUE(core.status(id, &second));
  EXPECT_EQ(second.report_included, 0);
  EXPECT_TRUE(second.report_json.empty());
  EXPECT_EQ(second.finished_at, first.finished_at);
}

TEST(ServeCore, ValidateSpecEnforcesDocumentedRanges) {
  ServeCore core(small_config());
  std::string why;

  SubmitFrame ok = weighted_job("ok_name.0-1", 1);
  EXPECT_TRUE(core.validate_spec(ok, &why));

  SubmitFrame bad = ok;
  bad.name = "";
  EXPECT_FALSE(core.validate_spec(bad, &why));
  bad.name = std::string(65, 'a');
  EXPECT_FALSE(core.validate_spec(bad, &why));
  bad.name = "spaces are bad";
  EXPECT_FALSE(core.validate_spec(bad, &why));
  EXPECT_NE(why.find("[A-Za-z0-9_.-]"), std::string::npos);

  bad = ok;
  bad.share = 3;
  EXPECT_FALSE(core.validate_spec(bad, &why));

  bad = ok;
  bad.weight = 0;
  EXPECT_FALSE(core.validate_spec(bad, &why));
  bad.weight = 1001;
  EXPECT_FALSE(core.validate_spec(bad, &why));
  // Weight is a weighted-share knob only: ignored for best-effort.
  bad.share = static_cast<std::uint8_t>(WireShare::kBestEffort);
  EXPECT_TRUE(core.validate_spec(bad, &why));

  bad = ok;
  bad.priority = 1000001;
  EXPECT_FALSE(core.validate_spec(bad, &why));

  bad = ok;
  bad.job_class = small_config().job_classes;
  EXPECT_FALSE(core.validate_spec(bad, &why));

  bad = ok;
  bad.blocks = 0;
  EXPECT_FALSE(core.validate_spec(bad, &why));
  bad.blocks = small_config().max_blocks + 1;
  EXPECT_FALSE(core.validate_spec(bad, &why));
}

TEST(ServeCore, OversizedReservationBouncesWithReason) {
  ServeCore core(small_config());
  SubmitFrame spec = weighted_job("greedy", 1);
  spec.share = static_cast<std::uint8_t>(WireShare::kReserved);
  spec.reserved_prcs = small_config().prcs + 1;
  const std::uint64_t id = core.submit(1, spec);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(core.job(id)->state, JobState::kBounced);
  EXPECT_FALSE(core.job(id)->reason.empty());
  EXPECT_EQ(core.queue_depth(), 0u);

  // A bounced tenant releases its slot: a follow-up sane job still fits.
  const std::uint64_t next = core.submit(1, weighted_job("sane", 2));
  core.run_all();
  EXPECT_EQ(core.job(next)->state, JobState::kDone);
}

TEST(ServeCore, CancelSemantics) {
  ServeCore core(small_config());
  const std::uint64_t first = core.submit(1, weighted_job("a", 1));
  const std::uint64_t second = core.submit(1, weighted_job("b", 2));
  EXPECT_EQ(core.queue_position(second), 1u);

  bool cancelled = false;
  WireError error = WireError::kNone;

  // Unknown job.
  EXPECT_FALSE(core.cancel(999, 1, &cancelled, &error));
  EXPECT_EQ(error, WireError::kUnknownJob);

  // Foreign owner.
  EXPECT_FALSE(core.cancel(second, 2, &cancelled, &error));
  EXPECT_EQ(error, WireError::kForeignJob);

  // Queued: cancels, leaves the queue, frees the arbiter slot.
  EXPECT_TRUE(core.cancel(second, 1, &cancelled, &error));
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(core.job(second)->state, JobState::kCancelled);
  EXPECT_EQ(core.queue_depth(), 1u);

  // Already ran: "too late" is a success with cancelled = false.
  EXPECT_TRUE(core.run_next());
  EXPECT_TRUE(core.cancel(first, 1, &cancelled, &error));
  EXPECT_FALSE(cancelled);
  EXPECT_EQ(core.job(first)->state, JobState::kDone);

  // Replay-style owner 0 bypasses the ownership check.
  const std::uint64_t third = core.submit(7, weighted_job("c", 3));
  EXPECT_TRUE(core.cancel(third, 0, &cancelled, &error));
  EXPECT_TRUE(cancelled);
}

TEST(ServeCore, CancelAllOnlyTouchesTheOwner) {
  ServeCore core(small_config());
  core.submit(1, weighted_job("s1a", 1));
  core.submit(2, weighted_job("s2a", 2));
  core.submit(1, weighted_job("s1b", 3));
  EXPECT_EQ(core.cancel_all(1), 2u);
  EXPECT_EQ(core.queue_depth(), 1u);
  EXPECT_EQ(core.cancel_all(1), 0u);  // idempotent
}

TEST(ServeCore, QueueFullAndDrainingRejectSubmits) {
  ServeConfig config = small_config();
  config.max_queue = 2;
  ServeCore core(config);
  EXPECT_NE(core.submit(1, weighted_job("q1", 1)), 0u);
  EXPECT_NE(core.submit(1, weighted_job("q2", 2)), 0u);
  EXPECT_EQ(core.submit(1, weighted_job("q3", 3)), 0u);  // queue full
  EXPECT_EQ(core.jobs_created(), 2u);  // the rejected submit left no record

  core.begin_drain();
  EXPECT_EQ(core.submit(1, weighted_job("late", 4)), 0u);
  core.run_all();  // queued jobs still run to completion while draining
  EXPECT_EQ(core.job(1)->state, JobState::kDone);
  EXPECT_EQ(core.job(2)->state, JobState::kDone);
}

TEST(ServeCore, SameOpSequenceIsDeterministic) {
  auto drive = [](ServeCore& core) {
    core.submit(1, weighted_job("d1", 11));
    SubmitFrame res = weighted_job("d2", 22);
    res.share = static_cast<std::uint8_t>(WireShare::kReserved);
    res.reserved_prcs = 2;
    core.submit(1, res);
    core.run_all();
  };
  ServeCore a(small_config());
  ServeCore b(small_config());
  drive(a);
  drive(b);
  for (std::uint64_t id = 1; id <= 2; ++id) {
    JobStatusFrame sa, sb;
    ASSERT_TRUE(a.status(id, &sa));
    ASSERT_TRUE(b.status(id, &sb));
    EXPECT_EQ(sa.report_json, sb.report_json) << "job " << id;
    EXPECT_EQ(sa.counters_delta, sb.counters_delta) << "job " << id;
    EXPECT_EQ(sa.finished_at, sb.finished_at) << "job " << id;
  }
}

TEST(ServeCore, RetentionGcBoundsResidentRecords) {
  ServeConfig config = small_config();
  config.max_queue = 4;
  config.retain_jobs = 3;
  ServeCore core(config);

  // Churn: submit, run, poll-to-delivery. Every poll of a finished job
  // retires it; resident records must stay bounded while the lifetime
  // tallies keep counting.
  constexpr std::uint64_t kJobs = 12;
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    const std::uint64_t id = core.submit(1, weighted_job("gc", 100 + i));
    ASSERT_NE(id, 0u);
    ASSERT_TRUE(core.run_next());
    JobStatusFrame frame;
    ASSERT_TRUE(core.status(id, &frame));
    EXPECT_EQ(frame.report_included, 1);
    EXPECT_LE(core.resident_jobs(), config.retain_jobs);
  }
  EXPECT_EQ(core.jobs_created(), kJobs);
  EXPECT_EQ(core.jobs_done(), kJobs);
  EXPECT_EQ(core.resident_jobs(), config.retain_jobs);

  // Reclaimed ids poll as unknown; the most recent retain_jobs survive.
  JobStatusFrame frame;
  EXPECT_FALSE(core.status(1, &frame));
  EXPECT_EQ(core.job(1), nullptr);
  EXPECT_TRUE(core.status(kJobs, &frame));
  EXPECT_EQ(frame.report_included, 0);  // already delivered, metadata only

  // An undelivered report is never reclaimed: run jobs without polling
  // them and the records stay resident past the retention bound.
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_NE(core.submit(1, weighted_job("gc", 200 + i)), 0u);
    ASSERT_TRUE(core.run_next());
  }
  EXPECT_EQ(core.resident_jobs(), config.retain_jobs + 4);
  EXPECT_EQ(core.jobs_done(), kJobs + 4);

  // A bounced job retires on its first poll (no payload to deliver).
  SubmitFrame hog = weighted_job("hog", 1);
  hog.share = static_cast<std::uint8_t>(WireShare::kReserved);
  hog.reserved_prcs = 999;
  const std::uint64_t bounced = core.submit(1, hog);
  ASSERT_EQ(core.job(bounced)->state, JobState::kBounced);
  ASSERT_TRUE(core.status(bounced, &frame));
  EXPECT_EQ(core.jobs_bounced(), 1u);
  EXPECT_TRUE(core.job(bounced)->retired);
}

TEST(ServeCore, QueuedJobsAreNeverReclaimed) {
  ServeConfig config = small_config();
  config.retain_jobs = 0;  // reclaim immediately on delivery
  ServeCore core(config);
  const std::uint64_t queued = core.submit(1, weighted_job("q", 7));
  JobStatusFrame frame;
  ASSERT_TRUE(core.status(queued, &frame));  // queued poll: no retirement
  EXPECT_FALSE(core.job(queued)->retired);
  ASSERT_TRUE(core.run_next());
  ASSERT_TRUE(core.status(queued, &frame));  // delivery poll retires + evicts
  EXPECT_EQ(core.job(queued), nullptr);
  EXPECT_EQ(core.resident_jobs(), 0u);
  EXPECT_EQ(core.jobs_created(), 1u);
  EXPECT_EQ(core.jobs_done(), 1u);
}

TEST(ServeCore, JobLogReplayReproducesReportsByteIdentically) {
  ServeCore core(small_config());
  core.submit(3, weighted_job("r1", 5));
  SubmitFrame bounced = weighted_job("r2", 6);
  bounced.share = static_cast<std::uint8_t>(WireShare::kReserved);
  bounced.reserved_prcs = small_config().prcs + 1;
  core.submit(3, bounced);
  const std::uint64_t to_cancel = core.submit(3, weighted_job("r3", 7));
  core.run_next();
  bool cancelled = false;
  core.cancel(to_cancel, 3, &cancelled, nullptr);
  core.submit(3, weighted_job("r4", 8));
  core.run_all();

  // Capture what the live side streamed (first-poll reports) as records.
  std::ostringstream live;
  for (std::uint64_t id = 1; id <= core.jobs_created(); ++id) {
    JobStatusFrame status;
    ASSERT_TRUE(core.status(id, &status));
    ReplayJob record;
    record.id = id;
    record.state = core.job(id)->state;
    record.reason = status.reason;
    record.admitted_at = status.admitted_at;
    record.finished_at = status.finished_at;
    record.report_json = status.report_json;
    record.counters_delta = status.counters_delta;
    write_replay_record(live, record);
  }

  std::ostringstream log;
  for (const std::string& line : core.job_log()) log << line << '\n';
  std::istringstream log_in(log.str());
  const ReplayResult replayed = replay_job_log(log_in);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  ASSERT_EQ(replayed.jobs.size(), core.jobs_created());

  std::ostringstream replay;
  for (const ReplayJob& job : replayed.jobs) write_replay_record(replay, job);
  EXPECT_EQ(live.str(), replay.str());
}

TEST(ServeCore, ReplayRejectsMalformedLogs) {
  auto replay_of = [](const std::string& text) {
    std::istringstream in(text);
    return replay_job_log(in);
  };
  EXPECT_FALSE(replay_of("").ok);
  EXPECT_FALSE(replay_of("not.a.joblog\n").ok);
  EXPECT_FALSE(replay_of("mrts.joblog.v1 prcs=4\n").ok);  // incomplete header
  const std::string header =
      "mrts.joblog.v1 prcs=4 cg=1 job_classes=2 max_blocks=8 macroblocks=4 "
      "max_queue=8\n";
  EXPECT_TRUE(replay_of(header).ok);  // empty op stream is a valid log
  EXPECT_FALSE(replay_of(header + "frobnicate 1\n").ok);
  EXPECT_FALSE(replay_of(header + "run 1\n").ok);  // run with empty queue
  EXPECT_FALSE(replay_of(header + "submit 1 t\n").ok);  // short submit
  // Job-id mismatch: the log claims id 5, a fresh core would assign 1.
  EXPECT_FALSE(replay_of(header + "submit 5 t 0 1 0 0 0 0 1 9\n").ok);
}

// ---------------------------------------------------------------------------
// Session: the protocol state machine, driven with raw bytes.
// ---------------------------------------------------------------------------

/// Collects the response bytes and splits them back into decoded frames.
struct SessionHarness {
  ServeCore core;
  Session session;

  explicit SessionHarness(std::uint32_t id = 1)
      : core(small_config()), session(id, &core) {}

  /// Feeds one encoded request, returns the response frames. \p alive
  /// receives consume()'s keep-open verdict.
  std::vector<Frame> roundtrip(const std::vector<std::uint8_t>& bytes,
                               bool* alive = nullptr) {
    std::vector<std::uint8_t> out;
    const bool keep = session.consume(bytes, &out);
    if (alive != nullptr) *alive = keep;
    FrameDecoder decoder;
    decoder.feed(out);
    std::vector<Frame> frames;
    Frame frame;
    while (decoder.next(&frame) == FrameDecoder::Result::kFrame) {
      frames.push_back(frame);
    }
    EXPECT_EQ(decoder.buffered(), 0u);
    return frames;
  }

  void handshake() {
    const std::vector<Frame> frames = roundtrip(encode(HelloFrame{}));
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, static_cast<std::uint8_t>(FrameType::kHelloOk));
  }
};

ErrorFrame expect_error(const std::vector<Frame>& frames, WireError code) {
  ErrorFrame err;
  EXPECT_EQ(frames.size(), 1u);
  if (!frames.empty()) {
    EXPECT_EQ(frames[0].type, static_cast<std::uint8_t>(FrameType::kError));
    EXPECT_TRUE(decode(frames[0], &err));
    EXPECT_EQ(err.code, static_cast<std::uint16_t>(code));
  }
  return err;
}

TEST(Session, SubmitBeforeHelloIsAStateErrorTheSessionSurvives) {
  SessionHarness h;
  bool alive = false;
  const std::vector<Frame> frames =
      h.roundtrip(encode(weighted_job("early", 1)), &alive);
  const ErrorFrame err = expect_error(frames, WireError::kProtocolState);
  EXPECT_EQ(err.fatal, 0);
  EXPECT_TRUE(alive);
  h.handshake();  // HELLO still works afterwards
}

TEST(Session, HelloNegotiatesAndRepeatsAreRejected) {
  SessionHarness h(77);
  const std::vector<Frame> frames = h.roundtrip(encode(HelloFrame{1, "cli"}));
  ASSERT_EQ(frames.size(), 1u);
  HelloOkFrame ok;
  ASSERT_TRUE(decode(frames[0], &ok));
  EXPECT_EQ(ok.server_version, kWireVersion);
  EXPECT_EQ(ok.session_id, 77u);
  EXPECT_EQ(ok.prcs, 4u);
  EXPECT_EQ(ok.cg, 1u);
  EXPECT_EQ(ok.job_classes, 2u);

  expect_error(h.roundtrip(encode(HelloFrame{})), WireError::kProtocolState);
}

TEST(Session, UnsupportedClientVersionIsRecoverable) {
  SessionHarness h;
  bool alive = false;
  // The frame is well-formed v1; only the *requested* version is wrong, so
  // the reject is application-level and the connection survives.
  const std::vector<Frame> frames =
      h.roundtrip(encode(HelloFrame{2, "future"}), &alive);
  const ErrorFrame err = expect_error(frames, WireError::kBadVersion);
  EXPECT_EQ(err.fatal, 0);
  EXPECT_TRUE(alive);
  h.handshake();  // retrying with v1 succeeds
}

TEST(Session, FullJobLifecycleOverBytes) {
  SessionHarness h;
  h.handshake();

  std::vector<Frame> frames = h.roundtrip(encode(weighted_job("wire1", 9)));
  ASSERT_EQ(frames.size(), 1u);
  SubmitOkFrame submit_ok;
  ASSERT_TRUE(decode(frames[0], &submit_ok));
  EXPECT_EQ(submit_ok.job_id, 1u);
  EXPECT_EQ(submit_ok.admitted, 1);

  frames = h.roundtrip(encode(PollFrame{submit_ok.job_id}));
  JobStatusFrame status;
  ASSERT_TRUE(decode(frames.at(0), &status));
  EXPECT_EQ(status.state, static_cast<std::uint8_t>(WireJobState::kQueued));

  h.core.run_all();
  frames = h.roundtrip(encode(PollFrame{submit_ok.job_id}));
  ASSERT_TRUE(decode(frames.at(0), &status));
  EXPECT_EQ(status.state, static_cast<std::uint8_t>(WireJobState::kDone));
  EXPECT_EQ(status.report_included, 1);
  EXPECT_NE(status.report_json.find("mrts.run_report.v1"), std::string::npos);

  bool alive = true;
  frames = h.roundtrip(encode(DisconnectFrame{}), &alive);
  ASSERT_EQ(frames.size(), 1u);
  ByeFrame bye;
  ASSERT_TRUE(decode(frames[0], &bye));
  EXPECT_EQ(bye.jobs_submitted, 1u);
  EXPECT_EQ(bye.jobs_auto_cancelled, 0u);
  EXPECT_FALSE(alive);
  EXPECT_TRUE(h.session.closed());
}

TEST(Session, DisconnectAutoCancelsQueuedJobs) {
  SessionHarness h;
  h.handshake();
  h.roundtrip(encode(weighted_job("q1", 1)));
  h.roundtrip(encode(weighted_job("q2", 2)));
  bool alive = true;
  const std::vector<Frame> frames =
      h.roundtrip(encode(DisconnectFrame{}), &alive);
  ByeFrame bye;
  ASSERT_TRUE(decode(frames.at(0), &bye));
  EXPECT_EQ(bye.jobs_submitted, 2u);
  EXPECT_EQ(bye.jobs_auto_cancelled, 2u);
  EXPECT_FALSE(alive);
  EXPECT_EQ(h.core.queue_depth(), 0u);
  EXPECT_EQ(h.core.job(1)->state, JobState::kCancelled);
}

TEST(Session, AbortCancelsQueuedJobsAndIsIdempotent) {
  SessionHarness h;
  h.handshake();
  h.roundtrip(encode(weighted_job("crash", 1)));
  h.session.abort();
  EXPECT_TRUE(h.session.closed());
  EXPECT_EQ(h.core.queue_depth(), 0u);
  h.session.abort();  // second abort is a no-op
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(h.session.consume(encode(PollFrame{1}), &out));
  EXPECT_TRUE(out.empty());
}

TEST(Session, ErrorCodeSelection) {
  SessionHarness h(1);
  h.handshake();

  // Unknown job id.
  expect_error(h.roundtrip(encode(PollFrame{404})), WireError::kUnknownJob);

  // Foreign job: another session's submission.
  Session other(2, &h.core);
  std::vector<std::uint8_t> out;
  other.consume(encode(HelloFrame{}), &out);
  out.clear();
  other.consume(encode(weighted_job("theirs", 1)), &out);
  expect_error(h.roundtrip(encode(PollFrame{1})), WireError::kForeignJob);
  expect_error(h.roundtrip(encode(CancelFrame{1})), WireError::kForeignJob);

  // Invalid spec.
  SubmitFrame bad = weighted_job("bad name", 1);
  const ErrorFrame err = expect_error(h.roundtrip(encode(bad)),
                                      WireError::kBadSpec);
  EXPECT_EQ(err.fatal, 0);

  // Draining server.
  h.core.begin_drain();
  expect_error(h.roundtrip(encode(weighted_job("late", 2))),
               WireError::kShuttingDown);
}

TEST(Session, ServerSideFrameTypesAreProtocolErrors) {
  SessionHarness h;
  h.handshake();
  expect_error(h.roundtrip(encode(ByeFrame{})), WireError::kProtocolState);
  expect_error(h.roundtrip(encode(SubmitOkFrame{})),
               WireError::kProtocolState);
}

TEST(Session, UnknownFrameTypeIsRecoverable) {
  SessionHarness h;
  h.handshake();
  bool alive = false;
  const std::vector<Frame> frames = h.roundtrip(
      encode_frame(static_cast<FrameType>(0x0C), {}), &alive);
  expect_error(frames, WireError::kUnknownType);
  EXPECT_TRUE(alive);
}

TEST(Session, FatalFramingErrorSendsOneErrorAndCleansUp) {
  SessionHarness h;
  h.handshake();
  h.roundtrip(encode(weighted_job("doomed", 1)));
  ASSERT_EQ(h.core.queue_depth(), 1u);

  std::vector<std::uint8_t> garbage(32, 0xAB);  // not even a magic
  bool alive = false;
  const std::vector<Frame> frames = h.roundtrip(garbage, &alive);
  const ErrorFrame err = expect_error(frames, WireError::kBadMagic);
  EXPECT_EQ(err.fatal, 1);
  EXPECT_FALSE(alive);
  EXPECT_TRUE(h.session.closed());
  // The fatal teardown auto-cancelled the queued job, like a crash would.
  EXPECT_EQ(h.core.queue_depth(), 0u);
}

TEST(Session, TruncatedFrameAcrossFeedsStillParses) {
  SessionHarness h;
  const std::vector<std::uint8_t> hello = encode(HelloFrame{1, "slowpoke"});
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(h.session.consume(hello.data(), 5, &out));
  EXPECT_TRUE(out.empty());  // nothing answered for a partial frame
  EXPECT_TRUE(h.session.consume(hello.data() + 5, hello.size() - 5, &out));
  FrameDecoder decoder;
  decoder.feed(out);
  Frame frame;
  ASSERT_EQ(decoder.next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.type, static_cast<std::uint8_t>(FrameType::kHelloOk));
}

TEST(Session, SeededGarbageChurnNeverCrashesTheCore) {
  // 50 sessions fed random garbage (sometimes prefixed with a valid HELLO)
  // must never crash, never leak queue entries past abort, and must leave
  // the core usable for a real session afterwards.
  ServeCore core(small_config());
  Rng rng(123);
  for (std::uint32_t s = 1; s <= 50; ++s) {
    Session session(s, &core);
    std::vector<std::uint8_t> stream;
    if (rng.next_below(2) == 0) {
      const std::vector<std::uint8_t> hello = encode(HelloFrame{});
      stream.insert(stream.end(), hello.begin(), hello.end());
    }
    const std::size_t size = 1 + rng.next_below(256);
    for (std::size_t i = 0; i < size; ++i) {
      stream.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    std::vector<std::uint8_t> out;
    session.consume(stream, &out);
    session.abort();
  }
  EXPECT_EQ(core.queue_depth(), 0u);

  Session survivor(99, &core);
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(survivor.consume(encode(HelloFrame{}), &out));
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace mrts::serve
