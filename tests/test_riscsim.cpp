// Unit tests for the core-processor instruction-set simulator: assembler
// syntax/diagnostics, execution semantics, timing model and the H.264 kernel
// micro-programs.

#include <gtest/gtest.h>

#include "riscsim/assembler.h"
#include "riscsim/cpu.h"
#include "riscsim/kernel_programs.h"
#include "util/rng.h"

namespace mrts::riscsim {
namespace {

RunResult run(Cpu& cpu, const std::string& asm_text) {
  return cpu.run(assemble(asm_text));
}

TEST(Assembler, ParsesAllOperandForms) {
  const Program p = assemble(R"(
    start:
      movi r1, 5
      addi r2, r1, -3
      add  r3, r1, r2
      abs  r4, r3
      ldw  r5, [r1+8]
      stw  [r1+8], r5
      beq  r1, r2, start
      jmp  end
    end:
      halt
  )");
  EXPECT_EQ(p.code.size(), 9u);
  EXPECT_EQ(p.code[0].op, Op::kMovi);
  EXPECT_EQ(p.code[6].target, 0u);
  EXPECT_EQ(p.code[7].target, 8u);
}

TEST(Assembler, DiagnosticsCarryLineNumbers) {
  try {
    assemble("movi r1, 1\nbogus r1, r2\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, RejectsBadInput) {
  EXPECT_THROW(assemble("add r1, r2"), std::invalid_argument);     // arity
  EXPECT_THROW(assemble("add r1, r2, r99"), std::invalid_argument); // register
  EXPECT_THROW(assemble("jmp nowhere"), std::invalid_argument);    // label
  EXPECT_THROW(assemble("x: x: halt"), std::invalid_argument);     // dup label
  EXPECT_THROW(assemble("ldw r1, r2"), std::invalid_argument);     // mem form
}

TEST(Assembler, DisassembleRoundTripReassembles) {
  const Program p = assemble(R"(
      movi r1, 3
    loop:
      subi r1, r1, 1
      bne  r1, r0, loop
      halt
  )");
  const Program p2 = assemble(disassemble(p));
  ASSERT_EQ(p2.code.size(), p.code.size());
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    EXPECT_EQ(p2.code[i].op, p.code[i].op) << i;
    EXPECT_EQ(p2.code[i].target, p.code[i].target) << i;
  }
}

TEST(Cpu, ArithmeticSemantics) {
  Cpu cpu;
  run(cpu, R"(
    movi r1, 7
    movi r2, -3
    add  r3, r1, r2   ; 4
    sub  r4, r1, r2   ; 10
    mul  r5, r1, r2   ; -21
    div  r6, r5, r1   ; -3
    abs  r7, r2       ; 3
    min  r8, r1, r2   ; -3
    max  r9, r1, r2   ; 7
    cmplt r10, r2, r1 ; 1
    cmpeq r11, r1, r1 ; 1
    halt
  )");
  EXPECT_EQ(cpu.reg(3), 4u);
  EXPECT_EQ(cpu.reg(4), 10u);
  EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(5)), -21);
  EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(6)), -3);
  EXPECT_EQ(cpu.reg(7), 3u);
  EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(8)), -3);
  EXPECT_EQ(cpu.reg(9), 7u);
  EXPECT_EQ(cpu.reg(10), 1u);
  EXPECT_EQ(cpu.reg(11), 1u);
}

TEST(Cpu, RegisterZeroIsHardwired) {
  Cpu cpu;
  run(cpu, "movi r0, 55\nhalt\n");
  EXPECT_EQ(cpu.reg(0), 0u);
}

TEST(Cpu, LoopExecutesCorrectCount) {
  Cpu cpu;
  const RunResult r = run(cpu, R"(
      movi r1, 10
      movi r2, 0
    loop:
      addi r2, r2, 1
      subi r1, r1, 1
      bne  r1, r0, loop
      halt
  )");
  EXPECT_EQ(cpu.reg(2), 10u);
  EXPECT_TRUE(r.halted);
  // 2 movi + 10*(addi,subi,bne) + halt = 33 instructions.
  EXPECT_EQ(r.instructions, 33u);
}

TEST(Cpu, TimingChargesBranchPenaltyAndMemory) {
  Cpu cpu;
  // movi(1) + jmp(1+1 penalty) + halt(1) = 4 cycles.
  const RunResult r = run(cpu, "movi r1, 1\njmp l\nl: halt\n");
  EXPECT_EQ(r.cycles, 4u);

  Cpu cpu2;
  // movi(1) + ldw(1 + 1 mem) + halt(1) = 4.
  const RunResult r2 = run(cpu2, "movi r1, 0\nldw r2, [r1+0]\nhalt\n");
  EXPECT_EQ(r2.cycles, 4u);

  Cpu cpu3;
  // mul costs 4, div costs 35.
  const RunResult r3 =
      run(cpu3, "movi r1, 6\nmovi r2, 2\nmul r3, r1, r2\ndiv r4, r1, r2\nhalt\n");
  EXPECT_EQ(r3.cycles, 1u + 1u + 4u + 35u + 1u);
}

TEST(Cpu, MemoryRoundTrip) {
  Cpu cpu;
  run(cpu, R"(
    movi r1, 100
    movi r2, 12345
    stw  [r1+0], r2
    ldw  r3, [r1+0]
    stb  [r1+4], r2
    ldb  r4, [r1+4]
    halt
  )");
  EXPECT_EQ(cpu.reg(3), 12345u);
  EXPECT_EQ(cpu.reg(4), 12345u & 0xff);
}

TEST(Cpu, DivisionByZeroThrows) {
  Cpu cpu;
  EXPECT_THROW(run(cpu, "movi r1, 1\ndiv r2, r1, r0\nhalt\n"),
               std::runtime_error);
}

TEST(Cpu, StepLimitStopsRunaway) {
  Cpu cpu;
  const RunResult r = cpu.run(assemble("l: jmp l\n"), /*max_steps=*/100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.instructions, 100u);
}

TEST(KernelPrograms, AllAssembleAndHalt) {
  for (const auto& name : kernel_program_names()) {
    const RunResult r = measure_kernel(name);
    EXPECT_TRUE(r.halted) << name;
    EXPECT_GT(r.cycles, 0u) << name;
  }
}

TEST(KernelPrograms, MeasurementsAreDeterministic) {
  for (const auto& name : kernel_program_names()) {
    EXPECT_EQ(measure_kernel(name, 7).cycles, measure_kernel(name, 7).cycles)
        << name;
  }
}

TEST(KernelPrograms, Sad4x4MatchesReferenceComputation) {
  Cpu cpu;
  Rng rng(7);
  // Same preload as measure_kernel.
  for (std::size_t addr = 0; addr < 2048; ++addr) {
    cpu.memory().write8(addr, static_cast<std::uint8_t>(rng.next_below(256)));
  }
  // Reference SAD over the two 4x4 blocks (stride 16).
  std::uint32_t expected = 0;
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      const int a = cpu.memory().read8(static_cast<std::size_t>(row * 16 + col));
      const int b =
          cpu.memory().read8(static_cast<std::size_t>(256 + row * 16 + col));
      expected += static_cast<std::uint32_t>(a > b ? a - b : b - a);
    }
  }
  cpu.run(kernel_program("sad_4x4"));
  EXPECT_EQ(cpu.reg(10), expected);
}

TEST(KernelPrograms, DeblockEdgeOnlyFiltersStrongEdges) {
  Cpu cpu;
  // Edge 0: |p0-q0| = 0 < alpha -> filtered. Edge 1: huge gradient -> skipped.
  const std::uint8_t pixels[16] = {10, 20, 20, 30,  // filtered
                                   0, 0, 255, 255,  // |p0-q0|=255 >= alpha
                                   50, 60, 60, 70,  // filtered
                                   90, 90, 90, 90};
  for (std::size_t i = 0; i < 16; ++i) cpu.memory().write8(1024 + i, pixels[i]);
  cpu.run(kernel_program("deblock_edge"));
  // Edge 1's pixels are untouched.
  EXPECT_EQ(cpu.memory().read8(1024 + 5), 0u);
  EXPECT_EQ(cpu.memory().read8(1024 + 6), 255u);
}

TEST(KernelPrograms, LatenciesAreInWorkloadModelRange) {
  // The workload model uses RISC latencies in the few-hundred-cycles range;
  // the measured micro-programs must be the same order of magnitude.
  for (const auto& name : kernel_program_names()) {
    const RunResult r = measure_kernel(name);
    EXPECT_GE(r.cycles, 20u) << name;
    EXPECT_LE(r.cycles, 2000u) << name;
  }
}

TEST(KernelPrograms, UnknownNameThrows) {
  EXPECT_THROW(kernel_program("nope"), std::invalid_argument);
  EXPECT_THROW(measure_kernel("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace mrts::riscsim
