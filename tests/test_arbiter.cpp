// Tests for the multi-tenant fabric arbitration engine (sim/arbiter.h) and
// the event-driven scheduler (sim/multi_app.h run_multi_tenant): tenant
// registration and admission control, hard partitions, the strict attach
// contracts of the unified RuntimeSystem lifecycle API, and the equality
// gate proving the arbitrated equal-weight configuration reproduces the
// legacy run_time_sliced free-for-all bit-exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "arch/fault_model.h"
#include "baselines/risc_only_rts.h"
#include "isa/ise_builder.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/arbiter.h"
#include "sim/multi_app.h"
#include "sim/sweep_runner.h"
#include "util/counters.h"
#include "util/trace.h"
#include "workload/workload_gen.h"

namespace mrts {
namespace {

/// A combined library with one synthetic kernel per tenant plus one
/// application trace per tenant, all sharing one data-path table (the
/// shared-fabric requirement).
struct MultiTenantApp {
  IseLibrary library;
  std::vector<KernelId> kernels;
  std::vector<ApplicationTrace> traces;
};

MultiTenantApp make_apps(unsigned tenants, unsigned blocks) {
  MultiTenantApp app;
  for (unsigned i = 0; i < tenants; ++i) {
    const std::string name = "T" + std::to_string(i);
    IseBuildSpec spec;
    spec.kernel_name = name;
    spec.sw_latency = 700;
    spec.control_fraction = 0.4;
    spec.fg_data_path_names = {name + "_ctrl_fg", name + "_dp_fg"};
    spec.cg_data_path_names = {name + "_mac_cg"};
    spec.fg_control_dps = 1;
    spec.cg_data_dps = 1;
    app.kernels.push_back(build_kernel_ises(app.library, spec));
  }
  app.traces.resize(tenants);
  for (unsigned i = 0; i < tenants; ++i) {
    Rng rng(1000 + i);
    for (unsigned b = 0; b < blocks; ++b) {
      FunctionalBlockInstance inst = make_block_instance(
          FunctionalBlockId{0}, /*macroblocks=*/400,
          {{app.kernels[i], 8.0, 25, 0.1}}, /*entry_gap=*/200,
          /*tail_gap=*/200, rng);
      stamp_programmed_trigger(inst, app.library);
      app.traces[i].blocks.push_back(std::move(inst));
    }
  }
  return app;
}

TenantPolicy weighted(unsigned weight, unsigned priority = 0) {
  TenantPolicy p;
  p.share = TenantShare::kWeighted;
  p.weight = weight;
  p.priority = priority;
  return p;
}

TenantPolicy reserved(unsigned prcs, unsigned cg, unsigned priority = 0) {
  TenantPolicy p;
  p.share = TenantShare::kReserved;
  p.reserved_prcs = prcs;
  p.reserved_cg = cg;
  p.priority = priority;
  return p;
}

TenantPolicy best_effort() {
  TenantPolicy p;
  p.share = TenantShare::kBestEffort;
  return p;
}

TEST(Arbiter, RegistrationAndAccessors) {
  const MultiTenantApp app = make_apps(1, 1);
  FabricManager fabric(2, 4, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  EXPECT_EQ(arbiter.num_tenants(), 0u);
  EXPECT_FALSE(arbiter.known(kUnownedTenant));

  const auto w = arbiter.register_tenant("web", weighted(3));
  const auto r = arbiter.register_tenant("rt", reserved(2, 1));
  const auto b = arbiter.register_tenant("batch", best_effort());
  EXPECT_TRUE(w.admitted);
  EXPECT_TRUE(r.admitted);
  EXPECT_TRUE(b.admitted);
  EXPECT_EQ(arbiter.num_tenants(), 3u);
  EXPECT_EQ(arbiter.tenant_name(w.id), "web");
  EXPECT_EQ(arbiter.policy(w.id).weight, 3u);
  EXPECT_EQ(arbiter.policy(r.id).share, TenantShare::kReserved);

  // The reserved partition takes the lowest-index free containers.
  EXPECT_EQ(arbiter.partition_prcs(r.id), (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(arbiter.partition_cg(r.id), (std::vector<unsigned>{0}));
  EXPECT_TRUE(arbiter.partition_prcs(w.id).empty());

  // Pool tenants may not place into the partition; the owner may.
  EXPECT_FALSE(arbiter.may_place(w.id, Grain::kFine, 0));
  EXPECT_TRUE(arbiter.may_place(r.id, Grain::kFine, 0));
  EXPECT_FALSE(arbiter.may_place(r.id, Grain::kFine, 2));
  EXPECT_TRUE(arbiter.may_place(w.id, Grain::kFine, 2));
  EXPECT_FALSE(arbiter.may_place(w.id, Grain::kCoarse, 0));
  EXPECT_TRUE(arbiter.may_place(w.id, Grain::kCoarse, 1));

  // Visible capacity: partition for reserved tenants, pool for the rest.
  EXPECT_EQ(arbiter.visible_prcs(r.id), 2u);
  EXPECT_EQ(arbiter.visible_cg(r.id), 1u);
  EXPECT_EQ(arbiter.visible_prcs(w.id), 2u);
  EXPECT_EQ(arbiter.visible_cg(w.id), 1u);

  // Bindings: valid for admitted tenants, null fabric for unknown ids.
  EXPECT_EQ(arbiter.binding(w.id).fabric, &fabric);
  EXPECT_EQ(arbiter.binding(TenantId{99}).fabric, nullptr);
  EXPECT_FALSE(arbiter.admitted(TenantId{99}));

  EXPECT_THROW(arbiter.register_tenant("zero", weighted(0)),
               std::invalid_argument);
  EXPECT_THROW(arbiter.policy(TenantId{99}), std::out_of_range);
}

TEST(Arbiter, OversizedReservationIsBouncedAndRolledBack) {
  const MultiTenantApp app = make_apps(1, 1);
  FabricManager fabric(1, 2, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  const auto reg = arbiter.register_tenant("huge", reserved(8, 0));
  EXPECT_FALSE(reg.admitted);
  EXPECT_FALSE(reg.reason.empty());
  EXPECT_FALSE(arbiter.admitted(reg.id));
  // The partial partition was rolled back: the pool is untouched.
  EXPECT_TRUE(arbiter.partition_prcs(reg.id).empty());
  EXPECT_EQ(arbiter.visible_prcs(kUnownedTenant), 2u);
  // A bounced tenant's binding has no fabric; constructing an MRts from it
  // throws — that is the admission bounce at the API level.
  EXPECT_EQ(arbiter.binding(reg.id).fabric, nullptr);
  EXPECT_THROW(MRts(app.library, arbiter.binding(reg.id)),
               std::invalid_argument);
}

TEST(Arbiter, FabricAttachContractsAreStrict) {
  const MultiTenantApp app = make_apps(1, 1);
  FabricManager fabric(1, 2, &app.library.data_paths());

  // Fault model: a different non-null model over an existing one throws;
  // re-attaching the same pointer is a no-op; null detaches.
  FaultModel fm1(FaultModelConfig::uniform(0.1, 1));
  FaultModel fm2(FaultModelConfig::uniform(0.1, 2));
  fabric.attach_fault_model(&fm1);
  EXPECT_THROW(fabric.attach_fault_model(&fm2), std::logic_error);
  EXPECT_NO_THROW(fabric.attach_fault_model(&fm1));
  fabric.attach_fault_model(nullptr);
  EXPECT_NO_THROW(fabric.attach_fault_model(&fm2));

  // Observability: same contract.
  TraceRecorder rec1, rec2;
  fabric.attach_observability(&rec1, nullptr);
  EXPECT_TRUE(fabric.observability_attached());
  EXPECT_THROW(fabric.attach_observability(&rec2, nullptr), std::logic_error);
  EXPECT_NO_THROW(fabric.attach_observability(&rec1, nullptr));
  fabric.attach_observability(nullptr, nullptr);
  EXPECT_FALSE(fabric.observability_attached());
  EXPECT_NO_THROW(fabric.attach_observability(&rec2, nullptr));

  // Arbitration: a second arbiter on the same fabric is rejected.
  FabricArbiter arbiter(fabric);
  EXPECT_THROW(FabricArbiter second(fabric), std::logic_error);
}

TEST(Arbiter, RuntimeSystemLifecycleIsUniform) {
  const MultiTenantApp app = make_apps(1, 2);
  MRts mrts(app.library, 1, 2);
  RiscOnlyRts risc(app.library);

  // Both systems are driven through the RuntimeSystem base interface.
  TraceRecorder recorder;
  CounterRegistry counters;
  RuntimeSystem& mrts_base = mrts;
  RuntimeSystem& risc_base = risc;
  mrts_base.attach_observability(&recorder, &counters);
  risc_base.attach_observability(&recorder, &counters);  // default no-op

  FaultModel fm1(FaultModelConfig::uniform(0.0, 1));
  FaultModel fm2(FaultModelConfig::uniform(0.0, 2));
  EXPECT_TRUE(mrts_base.attach_fault_model(&fm1));
  // Double-attaching a *different* model is rejected with a clear error
  // instead of silently winning (the old "last attachment wins").
  EXPECT_THROW(mrts_base.attach_fault_model(&fm2), std::logic_error);
  // Systems without fault support report false (default no-op).
  EXPECT_FALSE(risc_base.attach_fault_model(&fm1));
}

TEST(Arbiter, SharedFabricObserverFirstWins) {
  const MultiTenantApp app = make_apps(2, 1);
  FabricManager shared(1, 2, &app.library.data_paths());
  MRts rts1(app.library, shared);
  MRts rts2(app.library, shared);

  TraceRecorder rec1, rec2;
  CounterRegistry c1, c2;
  rts1.attach_observability(&rec1, &c1);  // claims the fabric stream
  EXPECT_TRUE(shared.observability_attached());
  // A later tenant attaches without error but observes only its own units.
  EXPECT_NO_THROW(rts2.attach_observability(&rec2, &c2));
  // Attaching a different recorder *directly* over the fabric's throws.
  EXPECT_THROW(shared.attach_observability(&rec2, &c2), std::logic_error);
  // The first observer releasing its claim frees the stream.
  rts1.attach_observability(nullptr, nullptr);
  EXPECT_FALSE(shared.observability_attached());
  EXPECT_NO_THROW(rts2.attach_observability(&rec2, &c2));
  EXPECT_TRUE(shared.observability_attached());
}

TEST(Arbiter, ReservedPartitionIsNeverTouchedByPoolTenants) {
  MultiTenantApp app = make_apps(2, 8);
  FabricManager fabric(2, 4, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  const auto rt = arbiter.register_tenant("rt", reserved(2, 1));
  const auto pool = arbiter.register_tenant("pool", weighted(1));
  ASSERT_TRUE(rt.admitted);
  ASSERT_TRUE(pool.admitted);

  MRts rts_rt(app.library, arbiter.binding(rt.id));
  MRts rts_pool(app.library, arbiter.binding(pool.id));
  std::vector<Task> tasks(2);
  tasks[0].name = "rt";
  tasks[0].rts = &rts_rt;
  tasks[0].trace = &app.traces[0];
  tasks[0].tenant = rt.id;
  tasks[1].name = "pool";
  tasks[1].rts = &rts_pool;
  tasks[1].trace = &app.traces[1];
  tasks[1].tenant = pool.id;
  const MultiTenantResult result = run_multi_tenant(tasks, &arbiter);
  ASSERT_EQ(result.tasks.size(), 2u);
  EXPECT_TRUE(result.tasks[0].admitted);
  EXPECT_TRUE(result.tasks[1].admitted);

  // The pool tenant never placed into (or evicted from) the partition.
  for (unsigned i : arbiter.partition_prcs(rt.id)) {
    EXPECT_NE(fabric.prc_owner(i), pool.id) << "PRC " << i;
  }
  for (unsigned i : arbiter.partition_cg(rt.id)) {
    EXPECT_NE(fabric.cg_owner(i), pool.id) << "CG fabric " << i;
  }
  EXPECT_EQ(arbiter.stats(rt.id).evictions_suffered, 0u);
}

TEST(Arbiter, TenantEvictionsAreAttributedAndCounted) {
  // Three tenants with distinct kernels fight over a 1 PRC + 1 CG machine:
  // every installation destroys foreign state, and the fabric counters must
  // agree with the arbiter's per-tenant attribution.
  MultiTenantApp app = make_apps(3, 4);
  FabricManager fabric(1, 1, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  std::vector<FabricArbiter::Registration> regs;
  std::vector<std::unique_ptr<MRts>> systems;
  std::vector<Task> tasks(3);
  for (unsigned i = 0; i < 3; ++i) {
    regs.push_back(
        arbiter.register_tenant("T" + std::to_string(i), weighted(1 + i)));
    systems.push_back(
        std::make_unique<MRts>(app.library, arbiter.binding(regs[i].id)));
    tasks[i].name = "T" + std::to_string(i);
    tasks[i].rts = systems[i].get();
    tasks[i].trace = &app.traces[i];
    tasks[i].tenant = regs[i].id;
  }
  CounterRegistry counters;
  systems[0]->attach_observability(nullptr, &counters);  // claims the fabric
  const MultiTenantResult result = run_multi_tenant(tasks, &arbiter);
  EXPECT_GT(result.total_cycles, 0u);

  std::uint64_t caused = 0;
  std::uint64_t suffered = 0;
  for (const auto& reg : regs) {
    caused += arbiter.stats(reg.id).evictions_caused;
    suffered += arbiter.stats(reg.id).evictions_suffered;
  }
  EXPECT_GT(caused, 0u);
  EXPECT_EQ(caused, suffered);
  EXPECT_EQ(counters.counter("tenant.eviction"), caused);
}

TEST(Arbiter, AdmissionRevokedByQuarantinedCapacity) {
  MultiTenantApp app = make_apps(1, 4);
  FabricManager fabric(1, 2, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  const auto rt = arbiter.register_tenant("rt", reserved(2, 0));
  ASSERT_TRUE(rt.admitted);

  // Rate-1.0 injector: every FG load fails its CRC and every detection is
  // permanent, so the tenant's own loads quarantine its partition.
  MRts rts(app.library, arbiter.binding(rt.id));
  FaultModel model(FaultModelConfig::uniform(1.0, 7));
  RuntimeSystem& base = rts;
  ASSERT_TRUE(base.attach_fault_model(&model));
  run_application(rts, app.traces[0]);
  ASSERT_GT(model.stats().quarantined_prcs, 0u);

  // Live re-validation: the reservation no longer fits the usable capacity.
  EXPECT_FALSE(arbiter.admitted(rt.id));
  EXPECT_FALSE(arbiter.admission_reason(rt.id).empty());
  EXPECT_EQ(arbiter.binding(rt.id).fabric, nullptr);

  // run_multi_tenant bounces the task up front: zero blocks, reason carried.
  std::vector<Task> tasks(1);
  tasks[0].name = "rt";
  tasks[0].rts = &rts;
  tasks[0].trace = &app.traces[0];
  tasks[0].tenant = rt.id;
  const MultiTenantResult result = run_multi_tenant(tasks, &arbiter);
  ASSERT_EQ(result.tasks.size(), 1u);
  EXPECT_FALSE(result.tasks[0].admitted);
  EXPECT_FALSE(result.tasks[0].admission_reason.empty());
  EXPECT_TRUE(result.tasks[0].run.block_cycles.empty());
  EXPECT_EQ(result.total_cycles, 0u);
}

TEST(Arbiter, EqualWeightsNoReservationsReproduceTimeSlicedBitExactly) {
  // The equality gate: the arbitrated fabric with all-equal weights and no
  // reservations must reproduce the legacy unmanaged free-for-all
  // bit-exactly (same interleaving, same evictions, same cycle counts).
  MultiTenantApp app = make_apps(2, 6);

  FabricManager legacy_fabric(1, 2, &app.library.data_paths());
  MRts legacy_a(app.library, legacy_fabric);
  MRts legacy_b(app.library, legacy_fabric);
  const TimeSlicedResult legacy = run_time_sliced(
      {{"A", &legacy_a, &app.traces[0]}, {"B", &legacy_b, &app.traces[1]}});

  MultiTenantApp app2 = make_apps(2, 6);
  FabricManager arbitrated_fabric(1, 2, &app2.library.data_paths());
  FabricArbiter arbiter(arbitrated_fabric);
  const auto ta = arbiter.register_tenant("A", weighted(1));
  const auto tb = arbiter.register_tenant("B", weighted(1));
  MRts arb_a(app2.library, arbiter.binding(ta.id));
  MRts arb_b(app2.library, arbiter.binding(tb.id));
  std::vector<Task> tasks(2);
  tasks[0].name = "A";
  tasks[0].rts = &arb_a;
  tasks[0].trace = &app2.traces[0];
  tasks[0].tenant = ta.id;
  tasks[1].name = "B";
  tasks[1].rts = &arb_b;
  tasks[1].trace = &app2.traces[1];
  tasks[1].tenant = tb.id;
  const MultiTenantResult arbitrated = run_multi_tenant(tasks, &arbiter);

  EXPECT_EQ(arbitrated.total_cycles, legacy.total_cycles);
  ASSERT_EQ(arbitrated.tasks.size(), legacy.tasks.size());
  for (std::size_t i = 0; i < legacy.tasks.size(); ++i) {
    EXPECT_EQ(arbitrated.tasks[i].run.active_cycles,
              legacy.tasks[i].active_cycles);
    EXPECT_EQ(arbitrated.tasks[i].run.finished_at,
              legacy.tasks[i].finished_at);
    EXPECT_EQ(arbitrated.tasks[i].run.block_cycles,
              legacy.tasks[i].block_cycles);
    EXPECT_EQ(arbitrated.tasks[i].run.impl_executions,
              legacy.tasks[i].impl_executions);
  }
}

TEST(MultiTenantScheduler, PriorityOrdersReleasedTasks) {
  MultiTenantApp app = make_apps(2, 3);
  RiscOnlyRts rts_lo(app.library);
  RiscOnlyRts rts_hi(app.library);
  std::vector<Task> tasks(2);
  tasks[0].name = "lo";
  tasks[0].rts = &rts_lo;
  tasks[0].trace = &app.traces[0];
  tasks[0].priority = 0;
  tasks[1].name = "hi";
  tasks[1].rts = &rts_hi;
  tasks[1].trace = &app.traces[1];
  tasks[1].priority = 5;
  const MultiTenantResult r = run_multi_tenant(tasks);
  // The high-priority task runs all its blocks before "lo" gets the core.
  EXPECT_EQ(r.tasks[1].run.finished_at, r.tasks[1].run.active_cycles);
  EXPECT_EQ(r.tasks[0].run.finished_at, r.total_cycles);
  EXPECT_GT(r.tasks[0].run.finished_at, r.tasks[1].run.finished_at);
}

TEST(MultiTenantScheduler, DeadlinesAreReportedNotEnforced) {
  MultiTenantApp app = make_apps(2, 2);
  RiscOnlyRts rts_a(app.library);
  RiscOnlyRts rts_b(app.library);
  std::vector<Task> tasks(2);
  tasks[0].name = "tight";
  tasks[0].rts = &rts_a;
  tasks[0].trace = &app.traces[0];
  tasks[0].deadline = 1;  // unmeetable
  tasks[1].name = "loose";
  tasks[1].rts = &rts_b;
  tasks[1].trace = &app.traces[1];
  tasks[1].deadline = ~Cycles{0};
  const MultiTenantResult r = run_multi_tenant(tasks);
  EXPECT_FALSE(r.tasks[0].deadline_met);
  EXPECT_TRUE(r.tasks[1].deadline_met);
  // Both still ran to completion (deadlines are a report, not a kill).
  EXPECT_EQ(r.tasks[0].run.block_cycles.size(), 2u);
  EXPECT_EQ(r.tasks[1].run.block_cycles.size(), 2u);
  // Among equal priorities, the earlier deadline runs first.
  EXPECT_LT(r.tasks[0].run.finished_at, r.tasks[1].run.finished_at);
}

TEST(MultiTenantScheduler, ReleaseGapsIdleTheCore) {
  MultiTenantApp app = make_apps(1, 2);
  RiscOnlyRts rts(app.library);
  std::vector<Task> tasks(1);
  tasks[0].name = "late";
  tasks[0].rts = &rts;
  tasks[0].trace = &app.traces[0];
  tasks[0].release = 50000;
  const MultiTenantResult r = run_multi_tenant(tasks);
  // The clock jumps to the release, then the task runs back-to-back.
  EXPECT_EQ(r.tasks[0].run.finished_at,
            50000 + r.tasks[0].run.active_cycles);
  EXPECT_EQ(r.total_cycles, r.tasks[0].run.finished_at);
}

TEST(MultiTenantScheduler, TenantIdsRequireAnArbiter) {
  MultiTenantApp app = make_apps(1, 1);
  RiscOnlyRts rts(app.library);
  std::vector<Task> tasks(1);
  tasks[0].name = "t";
  tasks[0].rts = &rts;
  tasks[0].trace = &app.traces[0];
  tasks[0].tenant = TenantId{1};
  EXPECT_THROW(run_multi_tenant(tasks), std::invalid_argument);

  FabricManager fabric(1, 1, &app.library.data_paths());
  FabricArbiter arbiter(fabric);  // knows no tenant id 1
  EXPECT_THROW(run_multi_tenant(tasks, &arbiter), std::invalid_argument);
}

TEST(MultiTenantScheduler, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 0.0}), 0.5);
  EXPECT_NEAR(jain_fairness_index({4.0, 1.0, 1.0}), 0.667, 1e-3);
  // Edge cases pinned by definition, not accident: a single tenant is
  // perfectly fair whatever its throughput (x^2 / (1 * x^2) = 1), including
  // a completely starved one, and the all-zero guard means the index is
  // never NaN — bench_multi_tenant / `run-multi` print it straight into
  // CSV/stdout.
  EXPECT_DOUBLE_EQ(jain_fairness_index({42.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0}), 1.0);
  EXPECT_FALSE(std::isnan(jain_fairness_index({0.0, 0.0, 0.0})));
  EXPECT_FALSE(std::isnan(jain_fairness_index({})));
}

/// One full multi-tenant scenario as a sweep point, with a flight recorder
/// and counter registry attached (per point — never shared across workers).
struct DeterminismProbe {
  Cycles total_cycles = 0;
  std::vector<Cycles> finished_at;
  std::size_t trace_events = 0;
  std::uint64_t tenant_evictions = 0;

  bool operator==(const DeterminismProbe& o) const {
    return total_cycles == o.total_cycles && finished_at == o.finished_at &&
           trace_events == o.trace_events &&
           tenant_evictions == o.tenant_evictions;
  }
};

DeterminismProbe run_scenario(unsigned tenants) {
  MultiTenantApp app = make_apps(tenants, 4);
  FabricManager fabric(1, 2, &app.library.data_paths());
  FabricArbiter arbiter(fabric);
  TraceRecorder recorder;
  CounterRegistry counters;
  std::vector<FabricArbiter::Registration> regs;
  std::vector<std::unique_ptr<MRts>> systems;
  std::vector<Task> tasks(tenants);
  for (unsigned i = 0; i < tenants; ++i) {
    regs.push_back(
        arbiter.register_tenant("T" + std::to_string(i), weighted(1 + i)));
    systems.push_back(
        std::make_unique<MRts>(app.library, arbiter.binding(regs[i].id)));
    systems[i]->attach_observability(&recorder, &counters);
    tasks[i].name = "T" + std::to_string(i);
    tasks[i].rts = systems[i].get();
    tasks[i].trace = &app.traces[i];
    tasks[i].tenant = regs[i].id;
    tasks[i].recorder = &recorder;
  }
  const MultiTenantResult result = run_multi_tenant(tasks, &arbiter);
  DeterminismProbe probe;
  probe.total_cycles = result.total_cycles;
  for (const auto& tr : result.tasks) {
    probe.finished_at.push_back(tr.run.finished_at);
  }
  probe.trace_events = recorder.size();
  probe.tenant_evictions = counters.counter("tenant.eviction");
  return probe;
}

TEST(MultiTenantScheduler, DeterministicAcrossWorkerCounts) {
  const std::vector<unsigned> scenarios = {2, 3, 4, 6};
  const std::vector<DeterminismProbe> baseline =
      SweepRunner(1).map(scenarios, run_scenario);
  for (unsigned jobs : {2u, 4u, 8u}) {
    const std::vector<DeterminismProbe> parallel =
        SweepRunner(jobs).map(scenarios, run_scenario);
    ASSERT_EQ(parallel.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(parallel[i] == baseline[i])
          << "scenario " << scenarios[i] << " diverged at --jobs " << jobs;
    }
  }
}

}  // namespace
}  // namespace mrts
