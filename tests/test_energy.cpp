// Tests for the fabric reconfiguration statistics and the first-order
// energy model.

#include <gtest/gtest.h>

#include "baselines/risc_only_rts.h"
#include "rts/mrts.h"
#include "sim/app_simulator.h"
#include "sim/energy.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

TEST(ReconfigStats, CountsLoadsBytesAndReuse) {
  DataPathTable table;
  DataPathDesc fg;
  fg.name = "fg";
  fg.grain = Grain::kFine;
  fg.bitstream_bytes = 1000;
  const DataPathId fg_id = table.add(fg);
  DataPathDesc cg;
  cg.name = "cg";
  cg.grain = Grain::kCoarse;
  cg.context_instructions = 20;
  const DataPathId cg_id = table.add(cg);

  FabricManager fm(1, 1, &table);
  fm.install({{IseId{0}, KernelId{0}, {fg_id, cg_id}}}, 0);
  const ReconfigStats& s1 = fm.reconfig_stats();
  EXPECT_EQ(s1.fg_loads, 1u);
  EXPECT_EQ(s1.fg_bytes, 1000u);
  EXPECT_EQ(s1.cg_loads, 1u);
  EXPECT_EQ(s1.cg_bytes, 20u * 10u);  // 80-bit instructions = 10 bytes each
  EXPECT_EQ(s1.reused_instances, 0u);

  // Reinstalling the same selection transfers nothing new.
  fm.install({{IseId{0}, KernelId{0}, {fg_id, cg_id}}}, 1'000'000);
  const ReconfigStats& s2 = fm.reconfig_stats();
  EXPECT_EQ(s2.fg_loads, 1u);
  EXPECT_EQ(s2.cg_loads, 1u);
  EXPECT_EQ(s2.reused_instances, 2u);

  fm.reset();
  EXPECT_EQ(fm.reconfig_stats().fg_loads, 0u);
}

TEST(ReconfigStats, CancelledLoadsAreCounted) {
  DataPathTable table;
  for (int i = 0; i < 3; ++i) {
    DataPathDesc fg;
    fg.name = "fg" + std::to_string(i);
    fg.grain = Grain::kFine;
    table.add(fg);
  }
  FabricManager fm(0, 2, &table);
  // fg0 starts loading; fg1 queues behind it.
  fm.install({{IseId{0}, KernelId{0}, {DataPathId{0}, DataPathId{1}}}}, 0);
  // New selection drops fg1 (still queued) for fg2.
  fm.install({{IseId{1}, KernelId{1}, {DataPathId{0}, DataPathId{2}}}}, 100);
  EXPECT_EQ(fm.reconfig_stats().cancelled_loads, 1u);
}

TEST(Energy, HandComputedBreakdown) {
  AppRunResult run;
  run.total_cycles = 1000;
  run.impl_cycles[static_cast<std::size_t>(ImplKind::kRisc)] = 300;
  run.impl_cycles[static_cast<std::size_t>(ImplKind::kFullIse)] = 500;
  run.impl_cycles[static_cast<std::size_t>(ImplKind::kMonoCg)] = 100;
  // 100 cycles of gaps remain.
  ReconfigStats stats;
  stats.fg_bytes = 10'000;
  stats.cg_bytes = 1'000;

  EnergyParams p;
  p.core_nj_per_cycle = 1.0;
  p.accel_nj_per_cycle = 2.0;
  p.mono_nj_per_cycle = 3.0;
  p.fg_reconfig_nj_per_byte = 0.1;
  p.cg_reconfig_nj_per_byte = 0.2;
  p.leakage_nj_per_cycle = 0.5;

  const EnergyBreakdown e = estimate_energy(run, stats, p);
  // execution: (300+100)*1 + 500*2 + 100*3 = 1700 nJ
  EXPECT_NEAR(e.execution_mj, 1700e-6, 1e-12);
  // reconfig: 10k*0.1 + 1k*0.2 = 1200 nJ
  EXPECT_NEAR(e.reconfiguration_mj, 1200e-6, 1e-12);
  // leakage: 1000*0.5 = 500 nJ
  EXPECT_NEAR(e.leakage_mj, 500e-6, 1e-12);
  EXPECT_NEAR(e.total_mj(), 3400e-6, 1e-12);
  EXPECT_NEAR(e.edp(1000), 3400e-6 * 1e-3, 1e-12);
}

TEST(Energy, AcceleratedRunSavesEnergyDespiteReconfiguration) {
  H264AppParams params;
  params.frames = 3;
  const H264Application app = build_h264_application(params);

  RiscOnlyRts risc(app.library);
  const AppRunResult risc_run = run_application(risc, app.trace);
  const EnergyBreakdown risc_energy =
      estimate_energy(risc_run, ReconfigStats{});

  MRts rts(app.library, 2, 2);
  const AppRunResult accel_run = run_application(rts, app.trace);
  const EnergyBreakdown accel_energy =
      estimate_energy(accel_run, rts.fabric().reconfig_stats());

  // Accelerated execution costs more per cycle but runs far fewer cycles;
  // with leakage included the total must drop.
  EXPECT_LT(accel_energy.total_mj(), risc_energy.total_mj());
  EXPECT_GT(accel_energy.reconfiguration_mj, 0.0);
  // And the energy-delay product improves even more.
  EXPECT_LT(accel_energy.edp(accel_run.total_cycles),
            0.5 * risc_energy.edp(risc_run.total_cycles));
}

}  // namespace
}  // namespace mrts
