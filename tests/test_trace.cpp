// Tests for the flight recorder (util/trace.h) and the counter registry
// (util/counters.h): event recording, both exporters, the JSONL parser and
// summary, histogram bucketing, deterministic registry merges under the
// parallel sweep engine, and the end-to-end contract that attaching a
// recorder never changes simulation results.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "rts/mrts.h"
#include "rts/rts_interface.h"
#include "sim/app_simulator.h"
#include "sim/sweep_runner.h"
#include "util/counters.h"
#include "util/trace.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

TraceEvent make_event(TraceEventKind kind, Cycles at, Cycles dur = 0) {
  return {kind, kTrackApp, at, dur, 1, 2, 3.5, 4.5};
}

TEST(TraceRecorder, RecordsAndCounts) {
  TraceRecorder rec;
  EXPECT_TRUE(rec.empty());
  rec.record(make_event(TraceEventKind::kBlockBegin, 0));
  rec.record(make_event(TraceEventKind::kBlockEnd, 0, 100));
  rec.record(make_event(TraceEventKind::kBlockEnd, 100, 50));
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.count(TraceEventKind::kBlockEnd), 2u);
  EXPECT_EQ(rec.count(TraceEventKind::kMpuError), 0u);
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

TEST(TraceEventKindNames, RoundTripForEveryKind) {
  for (std::size_t i = 0; i < kNumTraceEventKinds; ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    const char* name = to_string(kind);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?");
    const auto back = trace_kind_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(trace_kind_from_string("no_such_kind").has_value());
}

TEST(TraceEventKindNames, EcuLabelsMatchImplKindNames) {
  // trace.cpp keeps a local copy of the ImplKind names (util must not
  // include rts headers). This pins the two tables together: if
  // to_string(ImplKind) changes, the exporter labels must follow.
  for (std::size_t i = 0; i < kNumImplKinds; ++i) {
    std::vector<TraceEvent> events;
    events.push_back({TraceEventKind::kEcuDecision, kTrackEcu, 0, 0, 0,
                      static_cast<std::uint32_t>(i), 0.0, 0.0});
    std::ostringstream os;
    write_trace_jsonl(os, events);
    EXPECT_NE(os.str().find(to_string(static_cast<ImplKind>(i))),
              std::string::npos)
        << "label missing ImplKind name '"
        << to_string(static_cast<ImplKind>(i)) << "'";
  }
}

TEST(TraceExport, CyclesToMicroseconds) {
  // 400 MHz core clock: 400 cycles = 1 us.
  EXPECT_DOUBLE_EQ(trace_cycles_to_us(400), 1.0);
  EXPECT_DOUBLE_EQ(trace_cycles_to_us(0), 0.0);
  EXPECT_DOUBLE_EQ(trace_cycles_to_us(1), 0.0025);
}

/// Checks that braces/brackets balance outside of string literals — a cheap
/// structural JSON validity test with no external parser dependency.
void expect_balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceExport, ChromeJsonIsStructurallyValid) {
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kBlockEnd, kTrackApp, 0, 1000, 7, 0,
                    12.0, 0.0});
  events.push_back({TraceEventKind::kReconfigStart, kTrackFgBase + 1, 400,
                    480000, 3, 0, 0.0, 0.0});
  events.push_back({TraceEventKind::kOccupancy, kTrackApp, 800, 0, 4, 2, 3.0,
                    1.0});
  events.push_back({TraceEventKind::kMpuError, kTrackMpu, 900, 0, 1, 2,
                    100.5, 98.0});
  // Label text with JSON-hostile characters must be escaped.
  std::ostringstream os;
  write_chrome_trace(os, events);
  const std::string json = os.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  expect_balanced_json(json);
  // Metadata names every referenced track, spans carry ts+dur, occupancy
  // becomes a counter event.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1200"), std::string::npos);  // 480000 cyc = 1200 us
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceExport, ChromeJsonOfEmptyTraceIsValid) {
  std::ostringstream os;
  write_chrome_trace(os, {});
  expect_balanced_json(os.str());
  EXPECT_EQ(os.str().rfind("{\"traceEvents\":[", 0), 0u);
}

TEST(TraceExport, JsonlRoundTripsEveryField) {
  std::vector<TraceEvent> events;
  events.push_back({TraceEventKind::kSelectorEval, kTrackSelector, 123, 0, 9,
                    4, -2.25, 1e9, 7});
  events.push_back({TraceEventKind::kReconfigStart, kTrackCgBase, 400, 60, 1,
                    1, 0.0, 0.0});
  std::ostringstream os;
  write_trace_jsonl(os, events);

  std::istringstream is(os.str());
  std::string line;
  std::size_t i = 0;
  while (std::getline(is, line)) {
    ASSERT_LT(i, events.size());
    const auto parsed = parse_trace_jsonl_line(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->kind, events[i].kind);
    EXPECT_EQ(parsed->track, events[i].track);
    EXPECT_EQ(parsed->at, events[i].at);
    EXPECT_EQ(parsed->duration, events[i].duration);
    EXPECT_EQ(parsed->arg0, events[i].arg0);
    EXPECT_EQ(parsed->arg1, events[i].arg1);
    EXPECT_DOUBLE_EQ(parsed->v0, events[i].v0);
    EXPECT_DOUBLE_EQ(parsed->v1, events[i].v1);
    EXPECT_EQ(parsed->tenant, events[i].tenant);
    ++i;
  }
  EXPECT_EQ(i, events.size());

  // Pre-tenant traces (no "tenant" token) still parse; the field defaults
  // to kUnownedTenant.
  const auto legacy = parse_trace_jsonl_line(
      "{\"kind\":\"block_begin\",\"at\":5,\"dur\":0,\"track\":0,"
      "\"arg0\":1,\"arg1\":2,\"v0\":0,\"v1\":0}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->tenant, kUnownedTenant);
}

TEST(TraceExport, SummaryAggregatesKindsAndCycleRange) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(TraceEventKind::kBlockBegin, 100));
  events.push_back(make_event(TraceEventKind::kBlockEnd, 100, 900));
  events.push_back(make_event(TraceEventKind::kBlockBegin, 2000));
  std::ostringstream os;
  write_trace_jsonl(os, events);

  std::istringstream is(os.str());
  const TraceSummary summary = summarize_trace_jsonl(is);
  EXPECT_EQ(summary.total_events, 3u);
  EXPECT_EQ(summary.parse_errors, 0u);
  EXPECT_EQ(summary.per_kind[static_cast<std::size_t>(
                TraceEventKind::kBlockBegin)],
            2u);
  EXPECT_EQ(summary.first_cycle, 100u);
  EXPECT_EQ(summary.last_cycle, 2000u);  // span end 100+900 < last instant
}

TEST(TraceExport, SummaryCountsMalformedLines) {
  std::istringstream is(
      "{\"kind\":\"block_begin\",\"at\":5}\n"
      "not json at all\n"
      "\n"  // blank lines are skipped, not errors
      "{\"kind\":\"no_such_kind\",\"at\":5}\n");
  const TraceSummary summary = summarize_trace_jsonl(is);
  EXPECT_EQ(summary.total_events, 1u);
  EXPECT_EQ(summary.parse_errors, 2u);
}

TEST(Histogram, BucketEdges) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.999), 0u);
  EXPECT_EQ(Histogram::bucket_of(std::nan("")), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_of(1.99), 1u);
  EXPECT_EQ(Histogram::bucket_of(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 11u);
  // Enormous values clamp into the last bucket instead of overflowing.
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, StatsAndMerge) {
  Histogram a;
  a.observe(2.0);
  a.observe(6.0);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);

  Histogram b;
  b.observe(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 18.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);

  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
}

TEST(CounterRegistry, AddObserveLookup) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add("a.count");
  reg.add("a.count", 4);
  reg.observe("a.latency", 8.0);
  EXPECT_EQ(reg.counter("a.count"), 5u);
  EXPECT_EQ(reg.counter("never.touched"), 0u);
  ASSERT_NE(reg.histogram("a.latency"), nullptr);
  EXPECT_EQ(reg.histogram("a.latency")->count(), 1u);
  EXPECT_EQ(reg.histogram("never.touched"), nullptr);
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(CounterRegistry, SubmissionOrderMergeIsDeterministicAtAnyJobCount) {
  // Double sums are not order-independent: 0.1 + 0.2 + 0.3 may differ in the
  // last bit from 0.3 + 0.2 + 0.1. Per-point registries merged in submission
  // order therefore give bit-identical aggregates at any worker count.
  const std::vector<int> points{0, 1, 2, 3, 4, 5, 6, 7};
  auto run_at = [&](unsigned jobs) {
    const SweepRunner runner(jobs);
    const auto regs = runner.map(points, [](int p) {
      CounterRegistry reg;
      reg.add("point.visits");
      // Values chosen to make the sum rounding-sensitive.
      reg.observe("point.value", 0.1 * static_cast<double>(p + 1));
      reg.observe("point.value", 1e16);
      return reg;
    });
    CounterRegistry merged;
    for (const auto& reg : regs) merged.merge(reg);
    return merged;
  };

  const CounterRegistry serial = run_at(1);
  EXPECT_EQ(serial.counter("point.visits"), points.size());
  const double serial_sum = serial.histogram("point.value")->sum();
  for (unsigned jobs : {2u, 4u}) {
    const CounterRegistry parallel = run_at(jobs);
    EXPECT_EQ(parallel.counter("point.visits"), points.size());
    // Bit-exact equality, not EXPECT_NEAR: this is the determinism contract.
    EXPECT_EQ(parallel.histogram("point.value")->sum(), serial_sum)
        << "jobs=" << jobs;
  }
}

TEST(TraceIntegration, TracedRunMatchesUntracedAndCapturesTheRun) {
  H264AppParams params;
  params.frames = 2;
  params.macroblocks = 20;
  const H264Application app = build_h264_application(params);

  MRts plain(app.library, 2, 2);
  const AppRunResult untraced = run_application(plain, app.trace);

  MRts observed(app.library, 2, 2);
  TraceRecorder recorder;
  CounterRegistry counters;
  observed.attach_observability(&recorder, &counters);
  const AppRunResult traced = run_application(observed, app.trace, &recorder);

  // Observability must never perturb the simulation.
  EXPECT_EQ(traced.total_cycles, untraced.total_cycles);
  EXPECT_EQ(traced.blocking_overhead, untraced.blocking_overhead);
  EXPECT_EQ(traced.impl_executions, untraced.impl_executions);

  // The recorder saw the run: blocks, selector work, reconfigurations,
  // ECU decisions and MPU feedback.
  EXPECT_EQ(recorder.count(TraceEventKind::kBlockBegin),
            app.trace.blocks.size());
  EXPECT_EQ(recorder.count(TraceEventKind::kBlockEnd),
            app.trace.blocks.size());
  EXPECT_GT(recorder.count(TraceEventKind::kSelectorPick), 0u);
  EXPECT_GT(recorder.count(TraceEventKind::kReconfigStart), 0u);
  EXPECT_GT(recorder.count(TraceEventKind::kEcuDecision), 0u);
  EXPECT_GT(recorder.count(TraceEventKind::kMpuError), 0u);
  EXPECT_GT(counters.counter("fabric.installs"), 0u);
  EXPECT_GT(counters.counter("mpu.observations"), 0u);

  // Both exporters digest the real event stream; the chrome export resolves
  // ids against the library (kernel names appear in labels).
  std::ostringstream chrome;
  write_chrome_trace(chrome, recorder.events(), &app.library);
  expect_balanced_json(chrome.str());
  EXPECT_NE(chrome.str().find(app.library.kernels().front().name),
            std::string::npos);

  std::ostringstream jsonl;
  write_trace_jsonl(jsonl, recorder.events(), &app.library);
  std::istringstream is(jsonl.str());
  const TraceSummary summary = summarize_trace_jsonl(is);
  EXPECT_EQ(summary.total_events, recorder.size());
  EXPECT_EQ(summary.parse_errors, 0u);

  // Detaching stops recording: a fresh run adds no events.
  observed.attach_observability(nullptr, nullptr);
  recorder.clear();
  run_application(observed, app.trace);
  EXPECT_TRUE(recorder.empty());
}

TEST(TraceIntegration, TrackNamesAreStable) {
  EXPECT_EQ(track_name(kTrackApp), "application");
  EXPECT_EQ(track_name(kTrackFgBase + 2), "PRC 2");
  EXPECT_EQ(track_name(kTrackCgBase), "CG fabric 0");
}

}  // namespace
}  // namespace mrts
