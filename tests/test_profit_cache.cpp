// Tests for the selector hot-path optimizations (rts/profit_cache.h): the
// contract is that profit memoization and the incremental planner are *pure*
// optimizations — every SelectionResult, counter and trace event stays
// identical to SelectorTuning::baseline(), which keeps the pre-optimization
// implementation alive for exactly this comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "arch/fabric_manager.h"
#include "arch/fault_model.h"
#include "isa/ise_builder.h"
#include "rts/profit_cache.h"
#include "rts/selector_heuristic.h"
#include "rts/selector_optimal.h"
#include "util/counters.h"
#include "util/trace.h"
#include "workload/h264_app.h"

namespace mrts {
namespace {

bool same_selection(const SelectionResult& a, const SelectionResult& b) {
  if (a.selected.size() != b.selected.size()) return false;
  for (std::size_t i = 0; i < a.selected.size(); ++i) {
    const SelectedIse& x = a.selected[i];
    const SelectedIse& y = b.selected[i];
    if (x.kernel != y.kernel || x.ise != y.ise || x.profit != y.profit ||
        x.instance_ready != y.instance_ready) {
      return false;
    }
  }
  return a.covered == b.covered &&
         a.profit_evaluations == b.profit_evaluations &&
         a.candidates_scanned == b.candidates_scanned &&
         a.first_round_evaluations == b.first_round_evaluations &&
         a.first_round_scans == b.first_round_scans &&
         a.overhead_cycles == b.overhead_cycles &&
         a.total_profit == b.total_profit;
}

/// Replays the H.264 trigger sequence on a fabric of the given size and, at
/// every decision point, compares the tuned selectors (memoization +
/// incremental planner) against SelectorTuning::baseline() on identical
/// planner snapshots. Returns the number of decision points checked.
std::size_t check_grid_point(const H264Application& app, unsigned prcs,
                             unsigned cg, FabricManager* faulted = nullptr) {
  const IseLibrary& lib = app.library;
  FabricManager own(cg, prcs, &lib.data_paths());
  FabricManager& fabric = faulted != nullptr ? *faulted : own;

  HeuristicSelector h_base(lib);
  h_base.set_tuning(SelectorTuning::baseline());
  HeuristicSelector h_tuned(lib);
  ProfitCache h_cache;
  h_tuned.attach_profit_cache(&h_cache);

  OptimalSelector o_base(lib);
  o_base.set_tuning(SelectorTuning::baseline());
  OptimalSelector o_tuned(lib);
  ProfitCache o_cache;
  o_tuned.attach_profit_cache(&o_cache);

  std::size_t checked = 0;
  Cycles now = 0;
  for (const FunctionalBlockInstance& block : app.trace.blocks) {
    ReconfigPlanner planner(lib.data_paths(), fabric, now);
    const SelectionResult hb = h_base.select(block.programmed, planner);
    const SelectionResult ht = h_tuned.select(block.programmed, planner);
    EXPECT_TRUE(same_selection(hb, ht))
        << "heuristic diverged at PRC=" << prcs << " CG=" << cg
        << " cycle=" << now;
    const SelectionResult ob = o_base.select(block.programmed, planner);
    const SelectionResult ot = o_tuned.select(block.programmed, planner);
    EXPECT_TRUE(same_selection(ob, ot))
        << "optimal diverged at PRC=" << prcs << " CG=" << cg
        << " cycle=" << now;
    ++checked;
    // Evolve the fabric with the agreed selection so later snapshots carry
    // real port backlogs and reusable instances.
    std::vector<IsePlacementRequest> requests;
    requests.reserve(hb.selected.size());
    for (const auto& s : hb.selected) {
      requests.push_back({s.ise, s.kernel, lib.ise(s.ise).data_paths});
    }
    fabric.install(requests, now);
    now += 150'000;
  }
  return checked;
}

TEST(ProfitCacheEquivalence, FullFabricGridHeuristicAndOptimal) {
  // The fig8/fig9 grid: every PRC x CG combination, including the RISC-only
  // corner (both selectors must return an empty selection there either way).
  H264AppParams params;
  params.frames = 2;  // 6 decision points per grid point keeps this fast
  const H264Application app = build_h264_application(params);
  std::size_t checked = 0;
  for (unsigned prcs = 0; prcs <= 6; ++prcs) {
    for (unsigned cg = 0; cg <= 3; ++cg) {
      checked += check_grid_point(app, prcs, cg);
    }
  }
  EXPECT_EQ(checked, 7u * 4u * app.trace.blocks.size());
}

TEST(ProfitCacheEquivalence, HoldsAfterFaultInducedQuarantines) {
  // Quarantines (and the scrub passes that diagnose them) bump the fabric
  // state epoch; selections on the degraded fabric must stay identical with
  // the cache on. The fault model is deterministic from its seed.
  H264AppParams params;
  params.frames = 2;
  const H264Application app = build_h264_application(params);
  const IseLibrary& lib = app.library;

  FaultModelConfig fc;
  fc.seed = 0xDEAD;
  fc.fg_load_failure_prob = 0.2;
  fc.transient_upset_prob = 0.05;
  fc.permanent_fault_prob = 0.5;
  fc.scrub_interval_cycles = 100'000;
  FaultModel fault(fc);

  FabricManager fabric(/*num_cg_fabrics=*/3, /*num_prcs=*/6,
                       &lib.data_paths());
  fabric.attach_fault_model(&fault);
  const std::uint64_t epoch_before = fabric.state_epoch();

  // Force a degraded fabric regardless of the stochastic diagnosis path.
  fabric.quarantine_prc(0, 0);
  fabric.quarantine_cg(0, 0);
  EXPECT_GT(fabric.state_epoch(), epoch_before);

  const std::uint64_t epoch_quarantined = fabric.state_epoch();
  check_grid_point(app, 6, 3, &fabric);
  // The replay installs and scrubs under an aggressive fault model; the
  // epoch must keep moving so stale cache keys can never match.
  EXPECT_GT(fabric.state_epoch(), epoch_quarantined);
}

TEST(ProfitCacheEquivalence, EpochBumpsOnEveryFabricMutation) {
  H264AppParams params;
  params.frames = 1;
  const H264Application app = build_h264_application(params);
  const IseLibrary& lib = app.library;
  FabricManager fabric(2, 4, &lib.data_paths());

  std::uint64_t last = fabric.state_epoch();
  const auto bumped = [&last, &fabric](const char* what) {
    const std::uint64_t now_epoch = fabric.state_epoch();
    EXPECT_GT(now_epoch, last) << what;
    last = now_epoch;
  };

  const IseVariant& v = lib.ises().front();
  fabric.install({{IseId{0}, v.kernel, v.data_paths}}, 0);
  bumped("install");
  fabric.quarantine_prc(1, 10);
  bumped("quarantine_prc");
  fabric.quarantine_cg(1, 10);
  bumped("quarantine_cg");
  fabric.reset();
  bumped("reset");

  // Pure reads must not bump: a planner snapshot is side-effect free.
  const std::uint64_t before_reads = fabric.state_epoch();
  (void)fabric.usage();
  ReconfigPlanner planner(lib.data_paths(), fabric, 0);
  (void)planner.plan(v.data_paths);
  EXPECT_EQ(fabric.state_epoch(), before_reads);
  EXPECT_EQ(planner.fabric_epoch(), before_reads);

  // Out-of-range quarantines are ignored and must not bump either (the
  // early-return guard precedes the epoch increment).
  fabric.quarantine_prc(1000, 0);
  fabric.quarantine_cg(1000, 0);
  EXPECT_EQ(fabric.state_epoch(), before_reads);
}

/// Library with a HOT and a COLD kernel (same shape as test_selector.cpp).
IseLibrary two_kernel_library() {
  IseLibrary lib;
  IseBuildSpec hot;
  hot.kernel_name = "HOT";
  hot.sw_latency = 1000;
  hot.control_fraction = 0.2;
  hot.fg_data_path_names = {"hot_fg1", "hot_fg2"};
  hot.cg_data_path_names = {"hot_cg1", "hot_cg2"};
  build_kernel_ises(lib, hot);

  IseBuildSpec cold;
  cold.kernel_name = "COLD";
  cold.sw_latency = 800;
  cold.control_fraction = 0.8;
  cold.fg_data_path_names = {"cold_fg1", "cold_fg2"};
  cold.cg_data_path_names = {"cold_cg1"};
  build_kernel_ises(lib, cold);
  return lib;
}

TriggerInstruction make_trigger(const IseLibrary& lib) {
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  ti.entries.push_back({lib.find_kernel("HOT"), 2000, 500, 50});
  ti.entries.push_back({lib.find_kernel("COLD"), 500, 800, 120});
  return ti;
}

TEST(ProfitCacheUnit, HitReturnsBitIdenticalProfit) {
  const IseLibrary lib = two_kernel_library();
  const TriggerEntry entry{lib.find_kernel("HOT"), 2000, 500, 50};
  ReconfigPlanner planner(lib.data_paths(), 4, 3, 0);
  const IseId ise = lib.fitting_ises(entry.kernel, 4, 3).front();
  const ProfitModel model;

  ProfitCache cache;
  cache.begin_select();
  ProfitCache::Key key;
  ASSERT_TRUE(cache.make_key(key, ise, lib.ise(ise), entry, planner, model));
  EXPECT_EQ(cache.lookup(key), nullptr);  // cold cache: miss

  EvalScratch scratch;
  const double computed = evaluate_candidate_profit(
      lib, ise, entry, planner, model, /*cache=*/nullptr, scratch);
  const double reference = evaluate_candidate(lib, ise, entry, planner,
                                              model).profit;
  EXPECT_EQ(computed, reference);  // exact, not approximate

  cache.insert(key, computed);
  const double* hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, computed);
  EXPECT_EQ(cache.select_hits(), 1u);
  EXPECT_EQ(cache.select_misses(), 1u);
}

TEST(ProfitCacheUnit, KeyChangesWhenPlannerStateChanges) {
  const IseLibrary lib = two_kernel_library();
  const TriggerEntry entry{lib.find_kernel("HOT"), 2000, 500, 50};
  const ProfitModel model;
  ReconfigPlanner planner(lib.data_paths(), 4, 3, 0);
  const IseId ise = lib.fitting_ises(entry.kernel, 4, 3).front();

  ProfitCache::Key before;
  ASSERT_TRUE(ProfitCache::make_key(before, ise, lib.ise(ise), entry, planner,
                                    model));
  // A commit moves the port cursors / claim counts: the key must differ.
  planner.commit(lib.ise(ise).data_paths);
  ProfitCache::Key after;
  ASSERT_TRUE(ProfitCache::make_key(after, ise, lib.ise(ise), entry, planner,
                                    model));
  EXPECT_FALSE(before == after);

  // Same planner state at a different trigger cycle must differ too.
  ReconfigPlanner later(lib.data_paths(), 4, 3, 1);
  ProfitCache::Key shifted;
  ASSERT_TRUE(ProfitCache::make_key(shifted, ise, lib.ise(ise), entry, later,
                                    model));
  EXPECT_FALSE(before == shifted);
}

TEST(ProfitCacheUnit, BeginSelectDropsEntriesAndTallies) {
  const IseLibrary lib = two_kernel_library();
  const TriggerEntry entry{lib.find_kernel("HOT"), 2000, 500, 50};
  ReconfigPlanner planner(lib.data_paths(), 4, 3, 0);
  const IseId ise = lib.fitting_ises(entry.kernel, 4, 3).front();

  ProfitCache cache;
  cache.begin_select();
  ProfitCache::Key key;
  ASSERT_TRUE(cache.make_key(key, ise, lib.ise(ise), entry, planner, {}));
  cache.insert(key, 42.0);
  ASSERT_NE(cache.lookup(key), nullptr);

  cache.begin_select();
  EXPECT_EQ(cache.select_hits(), 0u);
  EXPECT_EQ(cache.select_misses(), 0u);
  EXPECT_EQ(cache.lookup(key), nullptr);  // entries do not survive a select
  // Lifetime totals do survive (the bench derives its hit rate from them).
  EXPECT_EQ(cache.total_hits(), 1u);
  EXPECT_EQ(cache.total_misses(), 1u);
}

TEST(PlannerCheckpoint, RollbackRestoresExactState) {
  const IseLibrary lib = two_kernel_library();
  const std::vector<DataPathId>& dps = lib.ises().front().data_paths;
  const std::vector<DataPathId>& other = lib.ises().back().data_paths;

  FabricManager fabric(2, 4, &lib.data_paths());
  fabric.install({{IseId{0}, lib.ises().front().kernel, dps}}, 0);
  ReconfigPlanner planner(lib.data_paths(), fabric, 10);
  planner.commit(other);  // pre-checkpoint commits must survive rollback

  const ReconfigPlanner pristine = planner;  // reference copy
  const ReconfigPlanner::Checkpoint cp = planner.mark();
  std::vector<Cycles> scratch;
  planner.commit_into(dps, scratch);
  planner.commit_into(dps, scratch);  // second instance: fresh loads
  EXPECT_NE(planner.free_prcs(), pristine.free_prcs());
  planner.rollback(cp);

  EXPECT_EQ(planner.free_prcs(), pristine.free_prcs());
  EXPECT_EQ(planner.free_cg(), pristine.free_cg());
  EXPECT_EQ(planner.fg_cursor(), pristine.fg_cursor());
  EXPECT_EQ(planner.cg_cursor(), pristine.cg_cursor());
  EXPECT_EQ(planner.committed_paths(), pristine.committed_paths());
  for (const DataPathId dp : dps) {
    EXPECT_EQ(planner.claimed_count(dp), pristine.claimed_count(dp));
  }
  // The observable behaviour matches too: plan() and a fresh commit() return
  // exactly what the untouched copy returns.
  EXPECT_EQ(planner.plan(dps), pristine.plan(dps));
  ReconfigPlanner replay = pristine;
  EXPECT_EQ(planner.commit(dps), replay.commit(dps));
}

TEST(PlannerCheckpoint, CheckpointsNestLifo) {
  const IseLibrary lib = two_kernel_library();
  const std::vector<DataPathId>& dps = lib.ises().front().data_paths;
  ReconfigPlanner planner(lib.data_paths(), 6, 3, 0);

  const ReconfigPlanner::Checkpoint outer = planner.mark();
  planner.commit(dps);
  const ReconfigPlanner::Checkpoint inner = planner.mark();
  planner.commit(dps);
  planner.rollback(inner);
  EXPECT_TRUE(planner.covered_by_committed(dps));  // outer commit intact
  planner.rollback(outer);
  EXPECT_FALSE(planner.covered_by_committed(dps));
  EXPECT_EQ(planner.free_prcs(), 6u);
  EXPECT_EQ(planner.free_cg(), 3u);
}

TEST(PlannerCheckpoint, CommitIntoMatchesCommit) {
  const IseLibrary lib = two_kernel_library();
  ReconfigPlanner a(lib.data_paths(), 6, 3, 0);
  ReconfigPlanner b = a;
  std::vector<Cycles> scratch{99, 99};  // must be cleared by the callee
  for (const IseVariant& v : lib.ises()) {
    const std::vector<Cycles> expect = a.commit(v.data_paths);
    b.commit_into(v.data_paths, scratch);
    EXPECT_EQ(scratch, expect);
  }
  EXPECT_EQ(a.free_prcs(), b.free_prcs());
  EXPECT_EQ(a.fg_cursor(), b.fg_cursor());
  EXPECT_EQ(a.cg_cursor(), b.cg_cursor());
}

// The observability satellite: selector.cache.{hit,miss} land in the
// counter registry in stable lexicographic order (the CLI's counter table
// and trace-summary both render from name-sorted maps), and the per-select
// tallies surface as one kSelectorCacheStats trace event.
TEST(ProfitCacheObservability, CountersAndTraceEventsAreEmitted) {
  const IseLibrary lib = two_kernel_library();
  HeuristicSelector selector(lib);
  ProfitCache cache;
  selector.attach_profit_cache(&cache);
  TraceRecorder trace;
  CounterRegistry counters;
  selector.attach_observability(&trace, &counters);

  ReconfigPlanner planner(lib.data_paths(), 4, 3, 0);
  (void)selector.select(make_trigger(lib), planner);

  const std::uint64_t hits = counters.counter("selector.cache.hit");
  const std::uint64_t misses = counters.counter("selector.cache.miss");
  EXPECT_GT(misses, 0u);  // a cold cache always misses at least once
  EXPECT_EQ(hits + misses, cache.total_hits() + cache.total_misses());

  ASSERT_EQ(trace.count(TraceEventKind::kSelectorCacheStats), 1u);
  const auto it = std::find_if(
      trace.events().begin(), trace.events().end(), [](const TraceEvent& e) {
        return e.kind == TraceEventKind::kSelectorCacheStats;
      });
  ASSERT_NE(it, trace.events().end());
  EXPECT_EQ(static_cast<std::uint64_t>(it->v0), hits);
  EXPECT_EQ(static_cast<std::uint64_t>(it->v1), misses);
}

TEST(ProfitCacheObservability, CounterTableOrderIsAlphabetical) {
  // trace-summary and the counter table sort rows by name; pin the property
  // the renderers rely on (snapshot iteration is lexicographic) and the
  // relative order of the two cache counters.
  CounterRegistry counters;
  counters.add("selector.cache.miss", 3);
  counters.add("zz.last");
  counters.add("selector.cache.hit", 7);
  counters.add("aa.first");

  std::vector<std::string> names;
  for (const auto& [name, value] : counters.counters()) {
    names.push_back(name);
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const std::vector<std::string> expect = {
      "aa.first", "selector.cache.hit", "selector.cache.miss", "zz.last"};
  EXPECT_EQ(names, expect);
}

TEST(ProfitCacheObservability, CacheStatsEventNameRoundTrips) {
  EXPECT_STREQ(to_string(TraceEventKind::kSelectorCacheStats),
               "selector.cache");
  EXPECT_EQ(trace_kind_from_string("selector.cache"),
            TraceEventKind::kSelectorCacheStats);

  // The jsonl writer must label the event (the label text is what the
  // trace-summary table shows next to the kind).
  TraceEvent e;
  e.kind = TraceEventKind::kSelectorCacheStats;
  e.v0 = 7.0;
  e.v1 = 3.0;
  std::ostringstream os;
  write_trace_jsonl(os, {e});
  EXPECT_NE(os.str().find("\"selector.cache\""), std::string::npos);
  EXPECT_NE(os.str().find("profit cache hits/misses"), std::string::npos);
}

}  // namespace
}  // namespace mrts
