// mrts_serve — the persistent mRTS job-ingestion server.
//
//   mrts_serve --socket <path> [shape/limit flags]
//       Serve mrts.wire.v1 (docs/PROTOCOL.md) on an AF_UNIX socket: accept
//       tenant jobs, admit them through the resident FabricArbiter, run
//       admitted jobs on one resident fabric and stream each job's
//       RunReport JSON + counter deltas back to its client. SIGINT/SIGTERM
//       drain the queue and shut down cleanly; --exit-after bounds the run
//       for CI. docs/SERVING.md describes the lifecycle, threading model
//       and determinism contract.
//
//   mrts_serve --replay <joblog> [--out <file>]
//       Replay a job log (mrts.joblog.v1, written via --job-log) through a
//       fresh sim core and print every job's final record. Byte-identical
//       to what the live server streamed for the same log — the serve-smoke
//       CI job diffs the two.
//
// Exit code 0 on success, 1 on usage errors, 2 on input/runtime errors.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/serve_core.h"
#include "serve/server.h"
#include "util/cli_spec.h"

namespace {

using namespace mrts;
using namespace mrts::serve;

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

const CliSpec& cli_spec() {
  static const CliSpec spec = [] {
    CliSpec s("mrts_serve", "persistent mRTS job-ingestion server "
                            "(mrts.wire.v1 over AF_UNIX)",
              "exit codes: 0 success, 1 usage error, 2 input error");
    CliVerb& main_verb = s.add_verb("", "", "");
    main_verb.flags = {
        {"--socket", "<path>", "AF_UNIX socket path to serve on (required "
                               "unless --replay)"},
        {"--prcs", "<n>", "resident fabric: FG containers (default 6)"},
        {"--cg", "<n>", "resident fabric: CG fabrics (default 2)"},
        {"--job-classes", "<n>", "synthetic kernel classes (default 4)"},
        {"--max-blocks", "<n>", "per-job functional-block ceiling (default 64)"},
        {"--macroblocks", "<n>", "macroblock-loop length per block (default 24)"},
        {"--max-queue", "<n>", "queued-job ceiling (default 256)"},
        {"--retain-jobs", "<n>", "polled finished-job records kept for late "
                                 "status polls (default 1024)"},
        {"--exit-after", "<sessions>",
         "exit once this many sessions have closed (default 0 = run until "
         "SIGINT/SIGTERM)"},
        {"--job-log", "<file>", "write the mrts.joblog.v1 operation log at "
                                "shutdown"},
        {"--replay", "<joblog>", "replay a job log through a fresh sim core "
                                 "instead of serving"},
        {"--out", "<file>", "replay output file (default stdout)"},
        {"--quiet", "", "suppress the shutdown accounting summary"},
    };
    return s;
  }();
  return spec;
}

int usage() {
  std::fputs(cli_spec().help().c_str(), stderr);
  return 1;
}

bool parse_unsigned(const char* text, std::uint64_t max, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  std::uint64_t n = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    if (n > max / 10) return false;
    n = n * 10 + static_cast<std::uint64_t>(*p - '0');
    if (n > max) return false;
  }
  *out = n;
  return true;
}

int run_replay(const std::string& joblog_path, const std::string& out_path) {
  std::ifstream in(joblog_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", joblog_path.c_str());
    return 2;
  }
  const ReplayResult result = replay_job_log(in);
  if (!result.ok) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 2;
  }
  std::ostringstream os;
  for (const ReplayJob& job : result.jobs) write_replay_record(os, job);
  if (out_path.empty()) {
    std::fputs(os.str().c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  out << os.str();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  std::string replay_path;
  std::string out_path;

  const CliVerb& verb = *cli_spec().verb("");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(cli_spec().help().c_str(), stdout);
      return 0;
    }
    const CliFlag* flag = CliSpec::flag(verb, arg);
    if (flag == nullptr) return usage();
    const char* value = nullptr;
    if (!flag->value.empty()) {
      if (i + 1 >= argc) return usage();
      value = argv[++i];
    }
    std::uint64_t n = 0;
    if (arg == "--socket") {
      config.socket_path = value;
    } else if (arg == "--job-log") {
      config.job_log_path = value;
    } else if (arg == "--replay") {
      replay_path = value;
    } else if (arg == "--out") {
      out_path = value;
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else if (arg == "--prcs" && parse_unsigned(value, 1024, &n) && n > 0) {
      config.core.prcs = static_cast<unsigned>(n);
    } else if (arg == "--cg" && parse_unsigned(value, 1024, &n) && n > 0) {
      config.core.cg = static_cast<unsigned>(n);
    } else if (arg == "--job-classes" && parse_unsigned(value, 64, &n) &&
               n > 0) {
      config.core.job_classes = static_cast<unsigned>(n);
    } else if (arg == "--max-blocks" && parse_unsigned(value, 100000, &n) &&
               n > 0) {
      config.core.max_blocks = static_cast<unsigned>(n);
    } else if (arg == "--macroblocks" && parse_unsigned(value, 100000, &n) &&
               n > 0) {
      config.core.macroblocks = static_cast<unsigned>(n);
    } else if (arg == "--max-queue" && parse_unsigned(value, 1000000, &n) &&
               n > 0) {
      config.core.max_queue = static_cast<std::size_t>(n);
    } else if (arg == "--retain-jobs" && parse_unsigned(value, 1000000, &n)) {
      config.core.retain_jobs = static_cast<std::size_t>(n);
    } else if (arg == "--exit-after" && parse_unsigned(value, 1u << 30, &n)) {
      config.exit_after_sessions = n;
    } else {
      std::fprintf(stderr, "error: invalid value for %s: '%s'\n", arg.c_str(),
                   value == nullptr ? "" : value);
      return 2;
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path, out_path);
  if (config.socket_path.empty()) return usage();

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  // A client tearing down mid-write must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  Server server(std::move(config));
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "error: cannot listen: %s\n", err.c_str());
    return 2;
  }
  return server.run(&g_stop);
}
