// mrts_loadgen — churn load generator for mrts_serve.
//
//   mrts_loadgen --socket <path> --cycles <n> [--seed <n>] [flags]
//       Drive <n> tenant connect/submit/poll/disconnect cycles against a
//       running mrts_serve. Each cycle opens a fresh connection, negotiates
//       HELLO, submits a deterministic pseudo-random job mix (share policy,
//       weight/reservation, job class, block count all derived from
//       --seed), polls every job to its final state, records it, and says
//       DISCONNECT — with optional cancel and hard-drop cycles mixed in to
//       stress queue cleanup. The acceptance bar for the serving layer is
//       10,000+ cycles against one resident fabric with zero leaked
//       sessions/fds on the server's shutdown summary.
//
//       --save-reports writes one record per job (same format as
//       `mrts_serve --replay`), so CI can diff live-served reports against
//       a job-log replay byte for byte.
//
// Exit code 0 when every cycle completed, 1 on usage errors, 2 on
// connection/protocol failures.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/serve_core.h"
#include "util/cli_spec.h"
#include "util/rng.h"

namespace {

using namespace mrts;
using namespace mrts::serve;

const CliSpec& cli_spec() {
  static const CliSpec spec = [] {
    CliSpec s("mrts_loadgen",
              "tenant connect/submit/disconnect churn generator for "
              "mrts_serve",
              "exit codes: 0 success, 1 usage error, 2 input error");
    CliVerb& main_verb = s.add_verb("", "", "");
    main_verb.flags = {
        {"--socket", "<path>", "mrts_serve AF_UNIX socket (required)"},
        {"--cycles", "<n>", "connect/submit/disconnect cycles (required)"},
        {"--seed", "<n>", "job-mix seed (default 1)"},
        {"--jobs-per-cycle", "<n>", "SUBMITs per connection (default 1)"},
        {"--cancel-every", "<n>",
         "every n-th cycle cancels its last job instead of waiting "
         "(default 0 = never)"},
        {"--drop-every", "<n>",
         "every n-th cycle closes the socket without DISCONNECT to "
         "exercise server-side cleanup (default 0 = never)"},
        {"--save-reports", "<file>",
         "append every job's final record (mrts_serve --replay format)"},
        {"--quiet", "", "suppress the completion summary"},
    };
    return s;
  }();
  return spec;
}

int usage() {
  std::fputs(cli_spec().help().c_str(), stderr);
  return 1;
}

bool parse_unsigned(const char* text, std::uint64_t max, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  std::uint64_t n = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    if (n > max / 10) return false;
    n = n * 10 + static_cast<std::uint64_t>(*p - '0');
    if (n > max) return false;
  }
  *out = n;
  return true;
}

/// Deterministic job mix: mostly weighted pool tenants, some best-effort,
/// an occasional reservation (a few of which are oversized on purpose, to
/// exercise the admission-bounce path end to end).
SubmitFrame make_job(Rng& rng, const HelloOkFrame& shape, std::uint64_t cycle,
                     std::uint64_t index) {
  SubmitFrame job;
  job.name = "lg" + std::to_string(cycle) + "_" + std::to_string(index);
  const std::uint64_t mix = rng.next_u64() % 10;
  if (mix < 6) {
    job.share = static_cast<std::uint8_t>(WireShare::kWeighted);
    job.weight = 1 + static_cast<std::uint32_t>(rng.next_u64() % 4);
  } else if (mix < 8) {
    job.share = static_cast<std::uint8_t>(WireShare::kBestEffort);
  } else {
    job.share = static_cast<std::uint8_t>(WireShare::kReserved);
    // 1..prcs+1: the +1 cases do not fit and must bounce with a reason.
    job.reserved_prcs =
        1 + static_cast<std::uint32_t>(rng.next_u64() % (shape.prcs + 1));
    job.reserved_cg = static_cast<std::uint32_t>(rng.next_u64() % 2);
  }
  job.priority = static_cast<std::uint32_t>(rng.next_u64() % 3);
  job.job_class =
      static_cast<std::uint32_t>(rng.next_u64() % shape.job_classes);
  job.blocks = 1 + static_cast<std::uint32_t>(rng.next_u64() % 2);
  job.seed = rng.next_u64();
  return job;
}

/// Converts a JOB_STATUS answer into the shared replay-record form.
ReplayJob to_record(const JobStatusFrame& status) {
  ReplayJob record;
  record.id = status.job_id;
  switch (static_cast<WireJobState>(status.state)) {
    case WireJobState::kQueued:
    case WireJobState::kRunning:
      record.state = JobState::kQueued;
      break;
    case WireJobState::kDone:
      record.state = JobState::kDone;
      break;
    case WireJobState::kBounced:
      record.state = JobState::kBounced;
      break;
    case WireJobState::kCancelled:
      record.state = JobState::kCancelled;
      break;
  }
  record.reason = status.reason;
  record.admitted_at = status.admitted_at;
  record.finished_at = status.finished_at;
  record.report_json = status.report_json;
  record.counters_delta = status.counters_delta;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::uint64_t cycles = 0;
  std::uint64_t seed = 1;
  std::uint64_t jobs_per_cycle = 1;
  std::uint64_t cancel_every = 0;
  std::uint64_t drop_every = 0;
  std::string save_reports;
  bool quiet = false;

  const CliVerb& verb = *cli_spec().verb("");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(cli_spec().help().c_str(), stdout);
      return 0;
    }
    const CliFlag* flag = CliSpec::flag(verb, arg);
    if (flag == nullptr) return usage();
    const char* value = nullptr;
    if (!flag->value.empty()) {
      if (i + 1 >= argc) return usage();
      value = argv[++i];
    }
    bool ok = true;
    if (arg == "--socket") {
      socket_path = value;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--save-reports") {
      save_reports = value;
    } else if (arg == "--cycles") {
      ok = parse_unsigned(value, 100000000, &cycles) && cycles > 0;
    } else if (arg == "--seed") {
      ok = parse_unsigned(value, ~0ull, &seed);
    } else if (arg == "--jobs-per-cycle") {
      ok = parse_unsigned(value, 64, &jobs_per_cycle) && jobs_per_cycle > 0;
    } else if (arg == "--cancel-every") {
      ok = parse_unsigned(value, 1u << 30, &cancel_every);
    } else if (arg == "--drop-every") {
      ok = parse_unsigned(value, 1u << 30, &drop_every);
    }
    if (!ok) {
      std::fprintf(stderr, "error: invalid value for %s: '%s'\n", arg.c_str(),
                   value == nullptr ? "" : value);
      return 2;
    }
  }
  if (socket_path.empty() || cycles == 0) return usage();

  std::ofstream reports;
  if (!save_reports.empty()) {
    reports.open(save_reports);
    if (!reports) {
      std::fprintf(stderr, "error: cannot write '%s'\n", save_reports.c_str());
      return 2;
    }
  }

  Rng rng(seed);
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_bounced = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t dropped_cycles = 0;

  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    Client client;
    std::string err;
    if (!client.connect_to(socket_path, &err)) {
      std::fprintf(stderr, "error: cycle %llu: %s\n",
                   static_cast<unsigned long long>(cycle), err.c_str());
      return 2;
    }
    HelloOkFrame shape;
    if (!client.hello(&shape, &err)) {
      std::fprintf(stderr, "error: cycle %llu: HELLO failed: %s\n",
                   static_cast<unsigned long long>(cycle), err.c_str());
      return 2;
    }

    const bool drop = drop_every != 0 && (cycle + 1) % drop_every == 0;
    const bool cancel_last =
        !drop && cancel_every != 0 && (cycle + 1) % cancel_every == 0;

    std::vector<std::uint64_t> job_ids;
    for (std::uint64_t j = 0; j < jobs_per_cycle; ++j) {
      const SubmitFrame spec = make_job(rng, shape, cycle, j);
      SubmitOkFrame ok;
      if (!client.submit(spec, &ok, &err)) {
        std::fprintf(stderr, "error: cycle %llu: SUBMIT failed: %s\n",
                     static_cast<unsigned long long>(cycle), err.c_str());
        return 2;
      }
      job_ids.push_back(ok.job_id);
    }

    if (drop) {
      // Simulated client crash: the server must auto-cancel what is still
      // queued and account the session as closed, not leaked.
      client.close_now();
      ++dropped_cycles;
      continue;
    }

    if (cancel_last && !job_ids.empty()) {
      CancelOkFrame cancel_ok;
      if (!client.cancel(job_ids.back(), &cancel_ok, &err)) {
        std::fprintf(stderr, "error: cycle %llu: CANCEL failed: %s\n",
                     static_cast<unsigned long long>(cycle), err.c_str());
        return 2;
      }
    }

    for (std::uint64_t id : job_ids) {
      JobStatusFrame status;
      if (!client.poll_until_final(id, &status, &err)) {
        std::fprintf(stderr, "error: cycle %llu: POLL failed: %s\n",
                     static_cast<unsigned long long>(cycle), err.c_str());
        return 2;
      }
      switch (static_cast<WireJobState>(status.state)) {
        case WireJobState::kDone:
          ++jobs_done;
          break;
        case WireJobState::kBounced:
          ++jobs_bounced;
          break;
        case WireJobState::kCancelled:
          ++jobs_cancelled;
          break;
        default:
          break;
      }
      if (reports.is_open()) {
        std::ostringstream os;
        write_replay_record(os, to_record(status));
        reports << os.str();
      }
    }

    ByeFrame bye;
    if (!client.disconnect(&bye, &err)) {
      std::fprintf(stderr, "error: cycle %llu: DISCONNECT failed: %s\n",
                   static_cast<unsigned long long>(cycle), err.c_str());
      return 2;
    }
  }

  if (!quiet) {
    std::printf(
        "mrts_loadgen: %llu cycles complete (%llu dropped), jobs done=%llu "
        "bounced=%llu cancelled=%llu\n",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(dropped_cycles),
        static_cast<unsigned long long>(jobs_done),
        static_cast<unsigned long long>(jobs_bounced),
        static_cast<unsigned long long>(jobs_cancelled));
  }
  return 0;
}
