#!/usr/bin/env python3
"""Regenerates BENCH_e2e.json: whole-bench wall times for the two heaviest
figure benches with the simulator fast paths off (--no-bb-cache, the
plain-interpreter oracle) vs on (the shipping default).

Run from the repo root with a release build in build/:

    python3 tools/bench_e2e.py [--samples N] [--build DIR] [--out FILE]

Both modes must produce byte-identical CSVs; this script asserts that on
every sample before recording the timing. Absolute seconds are
machine-dependent — the tracked quantity is the speedup trajectory (see
docs/BENCHMARKS.md, schema mrts-e2e-bench-v1).
"""

import argparse
import filecmp
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

BENCHES = {
    "fig8_state_of_the_art": "bench_fig8_state_of_the_art",
    "fig9_heuristic_vs_optimal": "bench_fig9_heuristic_vs_optimal",
}
JOBS = 1
FRAMES = 16  # the committed file uses the full-size workload; CI shrinks

# Whole-bench wall seconds at the parent commit of the fast-path series
# (same machine, same best-of-N protocol). Not re-measurable from this
# tree — the cache-off mode still includes the series' ungated
# optimizations (selector trace guards, planner snapshot, scratch
# buffers), so cache_off_s underestimates the true "before". Re-anchor
# these when the series is re-based onto a new baseline.
SEED_S = {
    "fig8_state_of_the_art": 0.428,
    "fig9_heuristic_vs_optimal": 0.545,
}


def run_once(binary, workdir, no_bb_cache, frames):
    """Runs one bench in workdir; returns (wall_seconds, csv_paths)."""
    cmd = [binary, "--jobs", str(JOBS)]
    if no_bb_cache:
        cmd.append("--no-bb-cache")
    env = dict(os.environ)
    env.pop("MRTS_NO_BB_CACHE", None)
    env["MRTS_BENCH_FRAMES"] = str(frames)
    start = time.monotonic()
    subprocess.run(cmd, cwd=workdir, env=env, check=True,
                   stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    elapsed = time.monotonic() - start
    csvs = sorted(f for f in os.listdir(workdir) if f.endswith(".csv"))
    return elapsed, csvs


def bench_times(binary, samples, frames):
    """Best-of-N wall seconds for both modes, asserting CSV identity."""
    best = {"off": float("inf"), "on": float("inf")}
    with tempfile.TemporaryDirectory() as tmp:
        ref_dir = os.path.join(tmp, "ref")
        os.makedirs(ref_dir)
        ref_csvs = None
        for _ in range(samples):
            for mode, no_cache in (("off", True), ("on", False)):
                work = os.path.join(tmp, "work")
                os.makedirs(work)
                try:
                    elapsed, csvs = run_once(binary, work, no_cache, frames)
                    if not csvs:
                        sys.exit(f"{binary}: produced no CSV")
                    if ref_csvs is None:
                        ref_csvs = csvs
                        for f in csvs:
                            shutil.copy(os.path.join(work, f), ref_dir)
                    else:
                        if csvs != ref_csvs:
                            sys.exit(f"{binary}: CSV set changed: {csvs}")
                        for f in csvs:
                            if not filecmp.cmp(os.path.join(work, f),
                                               os.path.join(ref_dir, f),
                                               shallow=False):
                                sys.exit(f"{binary}: {f} differs between "
                                         "cache-on and cache-off runs")
                    best[mode] = min(best[mode], elapsed)
                finally:
                    shutil.rmtree(work)
    return best["off"], best["on"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--samples", type=int, default=5)
    ap.add_argument("--frames", type=int, default=FRAMES)
    ap.add_argument("--build", default="build")
    ap.add_argument("--out", default="BENCH_e2e.json")
    args = ap.parse_args()

    result = {
        "schema": "mrts-e2e-bench-v1",
        "unit": "seconds",
        "jobs": JOBS,
        "frames": args.frames,
        "samples": args.samples,
        "benches": {},
    }
    for name, binary in BENCHES.items():
        path = os.path.join(args.build, "bench", binary)
        if not os.path.exists(path):
            sys.exit(f"missing {path} — build the benches first")
        off_s, on_s = bench_times(os.path.abspath(path), args.samples,
                                  args.frames)
        entry = {
            "cache_off_s": round(off_s, 3),
            "cache_on_s": round(on_s, 3),
            "speedup": round(off_s / on_s, 2),
        }
        if args.frames == FRAMES and name in SEED_S:
            entry["seed_s"] = SEED_S[name]
            entry["speedup_vs_seed"] = round(SEED_S[name] / on_s, 2)
        result["benches"][name] = entry
        print(f"{name}: cache-off {off_s:.3f}s, cache-on {on_s:.3f}s, "
              f"{off_s / on_s:.2f}x", file=sys.stderr)

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
