// mrts_cli — command-line driver for the mRTS library.
//
//   mrts_cli info <library.txt>
//       Print the kernels and ISE variants of a library file.
//
//   mrts_cli select <library.txt> <prcs> <cg> <KERNEL=e[,tf,tb]> ...
//       Run one heuristic selection for the given trigger forecast on an
//       idle machine and print the round-by-round trace.
//
//   mrts_cli run <h264|sdr> [prcs] [cg] [frames]
//       Run a built-in workload under every run-time system and print the
//       comparison summary.
//
// Exit code 0 on success, 1 on usage errors, 2 on input errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mrts.h"
#include "util/table.h"

namespace {

using namespace mrts;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mrts_cli info <library.txt>\n"
               "  mrts_cli select <library.txt> <prcs> <cg> "
               "<KERNEL=e[,tf,tb]> ...\n"
               "  mrts_cli run <h264|sdr> [prcs] [cg] [frames]\n");
  return 1;
}

int cmd_info(const std::string& path) {
  const IseLibrary lib = load_library(path);
  std::printf("%zu data paths, %zu kernels, %zu ISE variants\n\n",
              lib.data_paths().size(), lib.num_kernels(), lib.num_ises());
  TextTable table({"kernel", "sw cycles", "variant", "PRCs", "CG",
                   "full latency", "speedup", "reconfig [ms]"});
  for (const auto& kernel : lib.kernels()) {
    auto add = [&](IseId id) {
      const IseVariant& v = lib.ise(id);
      table.add_values(
          kernel.name, kernel.sw_latency, v.name, v.fg_units, v.cg_units,
          v.full_latency(),
          static_cast<double>(v.risc_latency()) /
              static_cast<double>(v.full_latency()),
          format_double(
              cycles_to_ms(v.worst_case_reconfig_cycles(lib.data_paths())),
              3));
    };
    for (IseId id : kernel.ises) add(id);
    if (kernel.has_mono_cg()) add(kernel.mono_cg);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_select(const std::string& path, unsigned prcs, unsigned cg,
               char** specs, int count) {
  const IseLibrary lib = load_library(path);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  for (int i = 0; i < count; ++i) {
    const std::string spec = specs[i];
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad trigger entry '%s' (expected KERNEL=e[,tf,tb])\n",
                   spec.c_str());
      return 2;
    }
    const KernelId k = lib.find_kernel(spec.substr(0, eq));
    if (k == kInvalidKernel) {
      std::fprintf(stderr, "unknown kernel '%s'\n",
                   spec.substr(0, eq).c_str());
      return 2;
    }
    TriggerEntry entry;
    entry.kernel = k;
    entry.time_to_first = 500;
    entry.time_between = 100;
    char* cursor = nullptr;
    entry.expected_executions = std::strtod(spec.c_str() + eq + 1, &cursor);
    if (cursor != nullptr && *cursor == ',') {
      entry.time_to_first = std::strtoull(cursor + 1, &cursor, 10);
      if (*cursor == ',') {
        entry.time_between = std::strtoull(cursor + 1, nullptr, 10);
      }
    }
    ti.entries.push_back(entry);
  }
  if (ti.entries.empty()) return usage();

  const HeuristicSelector selector(lib);
  ReconfigPlanner planner(lib.data_paths(), prcs, cg, 0);
  std::string trace;
  const SelectionResult result =
      selector.select_with_trace(ti, planner, trace);
  std::printf("%s\n", trace.c_str());
  std::printf("selected %zu ISE(s), total expected profit %.0f cycles, "
              "selection overhead ~%llu cycles\n",
              result.selected.size(), result.total_profit,
              static_cast<unsigned long long>(result.overhead_cycles));
  return 0;
}

int cmd_run(const std::string& which, unsigned prcs, unsigned cg,
            unsigned frames) {
  IseLibrary const* lib = nullptr;
  ApplicationTrace const* trace = nullptr;
  H264Application h264;
  SdrApplication sdr;
  if (which == "h264") {
    H264AppParams params;
    params.frames = frames;
    h264 = build_h264_application(params);
    lib = &h264.library;
    trace = &h264.trace;
  } else if (which == "sdr") {
    SdrAppParams params;
    params.bursts = frames;
    sdr = build_sdr_application(params);
    lib = &sdr.library;
    trace = &sdr.trace;
  } else {
    return usage();
  }

  RiscOnlyRts risc(*lib);
  const AppRunResult risc_run = run_application(risc, *trace);
  const auto profile = profile_application(*trace, *lib);

  TextTable table({"run-time system", "Mcycles", "speedup"});
  auto report = [&](RuntimeSystem& rts) {
    const AppRunResult r = run_application(rts, *trace);
    table.add_values(r.rts_name, format_mcycles(r.total_cycles),
                     speedup(risc_run.total_cycles, r.total_cycles));
  };
  report(risc);
  MRts mrts_rts(*lib, cg, prcs);
  report(mrts_rts);
  RisppRts rispp(*lib, cg, prcs);
  report(rispp);
  Morpheus4sRts morpheus(*lib, cg, prcs, profile);
  report(morpheus);
  OfflineOptimalRts offline(*lib, cg, prcs, profile);
  report(offline);

  std::printf("%s on %u PRCs + %u CG fabrics, %u frames/bursts:\n%s",
              which.c_str(), prcs, cg, frames, table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "info" && argc == 3) return cmd_info(argv[2]);
    if (command == "select" && argc >= 6) {
      return cmd_select(argv[2],
                        static_cast<unsigned>(std::atoi(argv[3])),
                        static_cast<unsigned>(std::atoi(argv[4])), argv + 5,
                        argc - 5);
    }
    if (command == "run" && argc >= 3) {
      const unsigned prcs =
          argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;
      const unsigned cg =
          argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 2;
      const unsigned frames =
          argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 8;
      return cmd_run(argv[2], prcs, cg, frames);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
