// mrts_cli — command-line driver for the mRTS library.
//
//   mrts_cli info <library.txt>
//       Print the kernels and ISE variants of a library file.
//
//   mrts_cli select <library.txt> <prcs> <cg> <KERNEL=e[,tf,tb]> ...
//       Run one heuristic selection for the given trigger forecast on an
//       idle machine and print the round-by-round trace.
//
//   mrts_cli run <h264|sdr> [prcs] [cg] [frames] [--trace <file>]
//            [--report <file>] [--fault-rate <p>] [--fault-seed <n>]
//            [--max-retries <n>]
//       Run a built-in workload under every run-time system and print the
//       comparison summary. With --trace, the mRTS run records a flight
//       recorder trace: *.jsonl writes JSON Lines, anything else writes
//       Chrome trace-event JSON (load it in Perfetto / chrome://tracing).
//       With --report, the mRTS run's trace is analyzed in memory and the
//       RunReport written to the file (.json / .csv / anything-else =
//       markdown) — works with or without --trace.
//       --fault-rate enables the deterministic fault injector on the mRTS
//       run (arch/fault_model.h): p in [0,1] drives load CRC failures,
//       transient upsets and permanent quarantines; --fault-seed seeds the
//       injector and --max-retries bounds the per-load retry budget.
//       Malformed values (negative/NaN rates, out-of-range seeds) are
//       input errors: exit code 2, never silently clamped.
//       --checkpoint-every N (with --checkpoint <file>) additionally writes
//       a whole-runtime snapshot of the mRTS run every N cycles (absolute
//       grid: at cycles N, 2N, ... — atomically overwriting <file>), so the
//       run can be killed at any point and resumed with `restore`.
//
//   mrts_cli checkpoint <h264|sdr> [prcs] [cg] [frames] --at-cycle <c>
//            --out <file> [--trace ...] [--report ...] [--fault-* ...]
//       Run only the mRTS leg of the comparison up to cycle <c> and write a
//       one-shot whole-runtime snapshot (format mrts.snapshot.v1) to <file>.
//       A run that finishes before <c> is an input error (exit 2) — there is
//       nothing left to checkpoint.
//
//   mrts_cli restore <snapshot>
//       Resume a checkpointed run in a fresh process and finish it. The
//       workload, fabric shape, fault config and observability outputs are
//       reconstructed from the snapshot's meta header; the resumed run is
//       bit-identical to the uninterrupted one — same stdout, same trace
//       file, same report. Truncated/corrupt/wrong-version snapshots are
//       input errors naming the failing byte offset (exit 2), and never
//       partially mutate the runtime.
//
//   mrts_cli run-multi <prcs> <cg> <blocks> <NAME=POLICY[:ARG][@PRIO]> ...
//       Multi-tenant simulation: one synthetic task per spec, every task's
//       MRts bound to one shared fabric behind a FabricArbiter. POLICY is
//       `weighted` (ARG = weight >= 1, default 1), `reserved`
//       (ARG = <prcs>+<cg>, e.g. 2+1) or `best-effort` (no ARG); @PRIO sets
//       the scheduling priority (default 0). Tenants whose reservation does
//       not fit are bounced by admission control and reported as such.
//
//   mrts_cli run-cmp <cores> <prcs> <cg> <blocks> [NAME=POLICY[:ARG][@PRIO] ...]
//       Chip-multiprocessor simulation (sim/cmp.h): <cores> RISC cores, one
//       synthetic task per core, contending for one shared <prcs>+<cg>
//       fabric pool behind a FabricArbiter over the modeled interconnect.
//       Task specs use the run-multi grammar and map to cores in order
//       (spec i runs on core i); cores without a spec default to
//       `core<i>=weighted:1`. More specs than cores is a usage error.
//       --hop-stride <n> places core i at hop distance 1 + i*n (0, the
//       default, is the flat/degenerate topology); --transfers-per-block <n>
//       sets the operand transfers charged per block (default 2).
//
//   mrts_cli trace-summary <trace.jsonl>
//       Validate a JSONL trace and print per-kind event counts plus the
//       span-duration p50/p90/p99.
//
//   mrts_cli trace-analyze <trace.jsonl> [--out <file>]
//       Run the obs/ analysis engine over a saved JSONL trace: cycle
//       accounting, occupancy, reconfiguration critical path and per-tenant
//       latency. Prints the markdown report to stdout, or writes --out
//       (.json / .csv / anything-else = markdown). A malformed trace is an
//       input error naming the first bad line (exit 2), never a crash.
//
//   mrts_cli --help / mrts_cli <verb> --help
//       Print the flag table of every verb (or one verb) and exit 0. The
//       help text is generated from the same CliSpec table the parsers
//       consult (util/cli_spec.h), so it cannot drift from what the binary
//       accepts; `run`/`checkpoint` also take --no-bb-cache to disable the
//       simulator fast paths (outputs stay bit-identical).
//
// Exit code 0 on success, 1 on usage errors (unknown verb, bad or trailing
// arguments), 2 on input/runtime errors (unreadable files, bad content).

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mrts.h"
#include "util/cli_spec.h"
#include "util/fastpath.h"
#include "util/table.h"

namespace {

using namespace mrts;

/// The single source of truth for verbs and flags: `--help` renders this
/// table and the parsers look flags up in it, so the two cannot drift
/// (tests/test_cli_spec.cpp and the cli_help smoke pin the contract).
const CliSpec& cli_spec() {
  static const CliSpec spec = [] {
    CliSpec s("mrts_cli", "command-line driver for the mRTS library",
              "exit codes: 0 success, 1 usage error, 2 input error");
    s.add_verb("info", "<library.txt>",
               "print the kernels and ISE variants of a library file");
    s.add_verb("select", "<library.txt> <prcs> <cg> <KERNEL=e[,tf,tb]> ...",
               "run one heuristic selection for the given trigger forecast "
               "on an idle machine");
    const std::vector<CliFlag> shared_run_flags = {
        {"--trace", "<file>",
         "record the mRTS run's flight recorder (.jsonl = JSON Lines, "
         "anything else = Chrome trace-event JSON)"},
        {"--report", "<file>",
         "analyze the mRTS run's trace in memory and write the RunReport "
         "(.json / .csv / anything else = markdown)"},
        {"--fault-rate", "<p>",
         "enable the deterministic fault injector, p in [0,1]"},
        {"--fault-seed", "<n>", "fault-injector seed (default 42)"},
        {"--max-retries", "<n>",
         "per-load retry budget in [0,1000] (default 3)"},
        {"--no-bb-cache", "",
         "disable the decoded basic-block caches and the batched "
         "frame-execution fast path (outputs stay bit-identical)"},
    };
    CliVerb& run = s.add_verb(
        "run", "<h264|sdr> [prcs] [cg] [frames]",
        "run a built-in workload under every run-time system and print the "
        "comparison summary");
    run.flags = shared_run_flags;
    run.flags.push_back(
        {"--checkpoint-every", "<cycles>",
         "write a whole-runtime snapshot every N cycles (needs "
         "--checkpoint)"});
    run.flags.push_back({"--checkpoint", "<file>",
                         "snapshot file for --checkpoint-every (atomically "
                         "overwritten)"});
    CliVerb& checkpoint = s.add_verb(
        "checkpoint", "<h264|sdr> [prcs] [cg] [frames]",
        "run the mRTS leg up to --at-cycle and write a one-shot snapshot");
    checkpoint.flags = shared_run_flags;
    checkpoint.flags.push_back(
        {"--at-cycle", "<c>", "cycle to checkpoint at (required)"});
    checkpoint.flags.push_back(
        {"--out", "<file>", "snapshot output file (required)"});
    s.add_verb("restore", "<snapshot>",
               "resume a checkpointed run in a fresh process and finish it "
               "bit-identically");
    s.add_verb("run-multi", "<prcs> <cg> <blocks> <NAME=POLICY[:ARG][@PRIO]> ...",
               "multi-tenant simulation behind a FabricArbiter; POLICY is "
               "weighted[:W] | reserved:<P>+<C> | best-effort");
    CliVerb& run_cmp = s.add_verb(
        "run-cmp", "<cores> <prcs> <cg> <blocks> [NAME=POLICY[:ARG][@PRIO] ...]",
        "CMP simulation: one task per core sharing one fabric pool over the "
        "modeled interconnect; specs map to cores in order (default "
        "core<i>=weighted:1)");
    run_cmp.flags = {
        {"--hop-stride", "<n>",
         "core i sits 1 + i*n interconnect hops from the fabric (default 0 = "
         "flat topology)"},
        {"--transfers-per-block", "<n>",
         "operand transfers charged per functional block (default 2)"},
    };
    s.add_verb("trace-summary", "<trace.jsonl>",
               "validate a JSONL trace and print per-kind event counts plus "
               "span-duration percentiles");
    CliVerb& analyze = s.add_verb(
        "trace-analyze", "<trace.jsonl>",
        "run the obs/ analysis engine over a saved JSONL trace");
    analyze.flags = {{"--out", "<file>",
                      "write the report to a file (.json / .csv / anything "
                      "else = markdown) instead of stdout"}};
    return s;
  }();
  return spec;
}

int usage() {
  std::fputs(cli_spec().help().c_str(), stderr);
  return 1;
}

int cmd_info(const std::string& path) {
  const IseLibrary lib = load_library(path);
  std::printf("%zu data paths, %zu kernels, %zu ISE variants\n\n",
              lib.data_paths().size(), lib.num_kernels(), lib.num_ises());
  TextTable table({"kernel", "sw cycles", "variant", "PRCs", "CG",
                   "full latency", "speedup", "reconfig [ms]"});
  for (const auto& kernel : lib.kernels()) {
    auto add = [&](IseId id) {
      const IseVariant& v = lib.ise(id);
      table.add_values(
          kernel.name, kernel.sw_latency, v.name, v.fg_units, v.cg_units,
          v.full_latency(), speedup(v.risc_latency(), v.full_latency()),
          format_double(
              cycles_to_ms(v.worst_case_reconfig_cycles(lib.data_paths())),
              3));
    };
    for (IseId id : kernel.ises) add(id);
    if (kernel.has_mono_cg()) add(kernel.mono_cg);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

/// Strict uint64 token parser: digits only, the whole token, no overflow.
bool parse_u64_token(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict parser for the value part of a `KERNEL=e[,tf,tb]` trigger spec.
/// Every token must parse in full: `1.5x`, `inf`, `nan`, empty tokens and
/// negative counts are input errors (exit 2), never silently truncated the
/// way a bare strtod would.
bool parse_trigger_values(const std::string& text, TriggerEntry* entry) {
  std::vector<std::string> tokens;
  std::size_t begin = 0;
  while (true) {
    const std::size_t comma = text.find(',', begin);
    tokens.push_back(text.substr(begin, comma - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (tokens.empty() || tokens.size() > 3) return false;
  char* end = nullptr;
  const double e = std::strtod(tokens[0].c_str(), &end);
  if (tokens[0].empty() || end != tokens[0].c_str() + tokens[0].size() ||
      !std::isfinite(e) || e < 0.0) {
    return false;
  }
  entry->expected_executions = e;
  if (tokens.size() >= 2 && !parse_u64_token(tokens[1], &entry->time_to_first)) {
    return false;
  }
  if (tokens.size() == 3 && !parse_u64_token(tokens[2], &entry->time_between)) {
    return false;
  }
  return true;
}

int cmd_select(const std::string& path, unsigned prcs, unsigned cg,
               char** specs, int count) {
  const IseLibrary lib = load_library(path);
  TriggerInstruction ti;
  ti.functional_block = FunctionalBlockId{0};
  for (int i = 0; i < count; ++i) {
    const std::string spec = specs[i];
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad trigger entry '%s' (expected KERNEL=e[,tf,tb])\n",
                   spec.c_str());
      return 2;
    }
    const KernelId k = lib.find_kernel(spec.substr(0, eq));
    if (k == kInvalidKernel) {
      std::fprintf(stderr, "unknown kernel '%s'\n",
                   spec.substr(0, eq).c_str());
      return 2;
    }
    TriggerEntry entry;
    entry.kernel = k;
    entry.time_to_first = 500;
    entry.time_between = 100;
    if (!parse_trigger_values(spec.substr(eq + 1), &entry)) {
      std::fprintf(stderr,
                   "bad trigger entry '%s' (expected KERNEL=e[,tf,tb] with "
                   "finite non-negative numbers)\n",
                   spec.c_str());
      return 2;
    }
    ti.entries.push_back(entry);
  }
  if (ti.entries.empty()) return usage();

  const HeuristicSelector selector(lib);
  ReconfigPlanner planner(lib.data_paths(), prcs, cg, 0);
  std::string trace;
  const SelectionResult result =
      selector.select_with_trace(ti, planner, trace);
  std::printf("%s\n", trace.c_str());
  std::printf("selected %zu ISE(s), total expected profit %.0f cycles, "
              "selection overhead ~%llu cycles\n",
              result.selected.size(), result.total_profit,
              static_cast<unsigned long long>(result.overhead_cycles));
  return 0;
}

/// Strict probability parser: the full token must be a finite double in
/// [0, 1]. Rejects NaN/inf, negatives, > 1 and trailing garbage — bad values
/// are input errors (exit 2), never silently clamped.
bool parse_probability(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;  // NaN fails every comparison
  *out = v;
  return true;
}

/// Strict uint64 parser: digits only (no sign), no trailing garbage, no
/// overflow past 2^64-1.
bool parse_seed(const char* s, std::uint64_t* out) {
  if (s[0] == '\0' || s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict bounded-unsigned parser for the retry budget.
bool parse_retries(const char* s, unsigned* out) {
  std::uint64_t v = 0;
  if (!parse_seed(s, &v) || v > 1000) return false;  // sane retry ceiling
  *out = static_cast<unsigned>(v);
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void print_counters(const CounterRegistry& counters) {
  if (counters.counters().empty() && counters.histograms().empty()) return;
  std::printf("\nmRTS counters:\n");
  TextTable table({"counter", "value"});
  for (const auto& [name, value] : counters.counters()) {
    table.add_values(name, value);
  }
  std::printf("%s", table.render().c_str());
  if (!counters.histograms().empty()) {
    TextTable hist({"histogram", "count", "mean", "min", "max"});
    for (const auto& [name, h] : counters.histograms()) {
      hist.add_values(name, h.count(), format_double(h.mean(), 2),
                      format_double(h.min(), 2), format_double(h.max(), 2));
    }
    std::printf("%s", hist.render().c_str());
  }
}

/// One built-in workload, owning storage selected by build_workload.
struct Workload {
  IseLibrary const* lib = nullptr;
  ApplicationTrace const* trace = nullptr;
  H264Application h264;
  SdrApplication sdr;
};

bool build_workload(const std::string& which, unsigned frames, Workload* w) {
  if (which == "h264") {
    H264AppParams params;
    params.frames = frames;
    w->h264 = build_h264_application(params);
    w->lib = &w->h264.library;
    w->trace = &w->h264.trace;
    return true;
  }
  if (which == "sdr") {
    SdrAppParams params;
    params.bursts = frames;
    w->sdr = build_sdr_application(params);
    w->lib = &w->sdr.library;
    w->trace = &w->sdr.trace;
    return true;
  }
  return false;
}

/// The `run` comparison, shared with `restore`: every run parameter comes
/// from the CheckpointMeta (the `run` verb builds one from its arguments,
/// `restore` decodes one from the snapshot), so a resumed run replays the
/// exact same code path — byte-identical stdout, trace and report. With
/// \p resume set, the mRTS leg continues from the snapshot instead of
/// starting fresh; the (deterministic) baselines simply re-run.
int run_compare(const CheckpointMeta& meta,
                const std::vector<std::uint8_t>* resume) {
  Workload w;
  if (!build_workload(meta.app, meta.frames, &w)) return usage();
  const IseLibrary* lib = w.lib;
  const ApplicationTrace* trace = w.trace;

  RiscOnlyRts risc(*lib);
  const AppRunResult risc_run = run_application(risc, *trace);
  const auto profile = profile_application(*trace, *lib);

  const bool traced = !meta.trace_path.empty();
  // --report needs the event stream too; the recorder stays in memory when
  // only a report was asked for.
  const bool instrument = traced || !meta.report_path.empty();
  TraceRecorder recorder;
  CounterRegistry counters;

  TextTable table({"run-time system", "Mcycles", "speedup"});
  // Every system runs through the uniform RuntimeSystem lifecycle API:
  // attach_observability is a base-interface call (default no-op for systems
  // without instrumentation), so no concrete-type special casing is needed.
  auto report = [&](RuntimeSystem& rts, bool instrument = false) {
    if (instrument) rts.attach_observability(&recorder, &counters);
    const AppRunResult r =
        run_application(rts, *trace, instrument ? &recorder : nullptr);
    table.add_values(r.rts_name, format_mcycles(r.total_cycles),
                     speedup(risc_run.total_cycles, r.total_cycles));
  };
  report(risc);

  MRtsConfig mrts_config;
  mrts_config.fault = meta.fault;  // baselines stay fault-free for comparison
  // Private-tenancy machine (sim/machine.h): performs the legacy
  // `MRts(lib, cg, prcs, config)` construction and owns the attach ordering.
  MachineConfig machine_config;
  machine_config.prcs = meta.prcs;
  machine_config.cg_fabrics = meta.cg;
  Machine machine(*lib, machine_config);
  machine.add_rts(mrts_config);
  MRts& mrts_rts = machine.mrts(0);
  // The mRTS leg runs resumably: restored from the snapshot when resuming,
  // stopped at every absolute N-cycle boundary when checkpointing. The
  // checkpoint grid is a pure function of the cycle cursor, so a run that is
  // killed and restored (even repeatedly) still checkpoints at the same
  // cycles and converges to the same final state.
  if (instrument) machine.attach_observability(&recorder, &counters);
  TraceRecorder* rec = instrument ? &recorder : nullptr;
  CounterRegistry* ctr = instrument ? &counters : nullptr;
  AppRunProgress progress;
  std::uint64_t sequence = 0;
  if (resume != nullptr) {
    apply_snapshot(*resume, mrts_rts, progress, rec, ctr);
    sequence = meta.sequence;
  }
  if (meta.checkpoint_every > 0) {
    while (true) {
      const Cycles stop = (progress.cursor / meta.checkpoint_every + 1) *
                          meta.checkpoint_every;
      if (run_application_portion(mrts_rts, *trace, progress, rec, stop)) {
        break;
      }
      ++sequence;
      // The save marker goes in *before* the image is built so the snapshot
      // contains its own marker: a restore from checkpoint k then replays
      // markers 1..k and the trace stays identical to the uninterrupted run.
      if (rec != nullptr) {
        rec->record({TraceEventKind::kSnapshotSave, kTrackApp, progress.cursor,
                     0, static_cast<std::uint32_t>(sequence), 0, 0.0, 0.0});
      }
      CheckpointMeta snap_meta = meta;
      snap_meta.sequence = sequence;
      const std::vector<std::uint8_t> bytes =
          build_snapshot(snap_meta, mrts_rts, progress, rec, ctr);
      if (!write_snapshot_file(meta.checkpoint_path, bytes)) {
        std::fprintf(stderr, "error: cannot write checkpoint file '%s'\n",
                     meta.checkpoint_path.c_str());
        return 2;
      }
    }
  } else {
    run_application_portion(mrts_rts, *trace, progress, rec);
  }
  table.add_values(progress.partial.rts_name,
                   format_mcycles(progress.partial.total_cycles),
                   speedup(risc_run.total_cycles,
                           progress.partial.total_cycles));

  RisppRts rispp(*lib, meta.cg, meta.prcs);
  report(rispp);
  Morpheus4sRts morpheus(*lib, meta.cg, meta.prcs, profile);
  report(morpheus);
  OfflineOptimalRts offline(*lib, meta.cg, meta.prcs, profile);
  report(offline);

  std::printf("%s on %u PRCs + %u CG fabrics, %u frames/bursts:\n%s",
              meta.app.c_str(), meta.prcs, meta.cg, meta.frames,
              table.render().c_str());

  if (mrts_rts.fault_model() != nullptr) {
    const FaultStats& fs = mrts_rts.fault_model()->stats();
    std::printf(
        "\nfault injection (mRTS run only): seed %llu, %llu fault(s) "
        "injected\n"
        "  load CRC failures %llu, retries %llu, abandoned loads %llu\n"
        "  transient upsets %llu, scrub repairs %llu, quarantined PRCs %llu, "
        "quarantined CG %llu\n",
        static_cast<unsigned long long>(meta.fault.seed),
        static_cast<unsigned long long>(fs.injected),
        static_cast<unsigned long long>(fs.load_failures),
        static_cast<unsigned long long>(fs.retries),
        static_cast<unsigned long long>(fs.failed_loads),
        static_cast<unsigned long long>(fs.transient_upsets),
        static_cast<unsigned long long>(fs.scrub_repairs),
        static_cast<unsigned long long>(fs.quarantined_prcs),
        static_cast<unsigned long long>(fs.quarantined_cg));
  }

  if (meta.checkpoint_every > 0) {
    // `sequence` counts the run's whole checkpoint stream (a resumed run
    // continues the numbering from the snapshot), so interrupted and
    // uninterrupted runs print the same total.
    std::printf("\ncheckpoint stream: %llu snapshot(s) every %llu cycles -> "
                "%s\n",
                static_cast<unsigned long long>(sequence),
                static_cast<unsigned long long>(meta.checkpoint_every),
                meta.checkpoint_path.c_str());
  }

  if (traced) {
    const bool jsonl = ends_with(meta.trace_path, ".jsonl");
    const bool ok =
        jsonl ? write_trace_jsonl_file(meta.trace_path, recorder.events(), lib)
              : write_chrome_trace_file(meta.trace_path, recorder.events(),
                                        lib);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                   meta.trace_path.c_str());
      return 2;
    }
    std::printf("\nwrote %zu trace events to %s (%s)\n", recorder.size(),
                meta.trace_path.c_str(),
                jsonl ? "JSON Lines" : "Chrome trace-event JSON");
    print_counters(counters);
  }
  if (!meta.report_path.empty()) {
    obs::AnalysisConfig config;
    config.num_prcs = meta.prcs;
    config.num_cg = meta.cg;
    const obs::RunReport run_report =
        obs::analyze_trace(recorder.events(), config);
    if (!obs::write_report_file(meta.report_path, run_report)) {
      std::fprintf(stderr, "error: cannot write report file '%s'\n",
                   meta.report_path.c_str());
      return 2;
    }
    std::printf("\nwrote run report (%zu events analyzed) to %s\n",
                run_report.total_events, meta.report_path.c_str());
  }
  return 0;
}

/// The `checkpoint` verb: run only the mRTS leg up to --at-cycle and write a
/// one-shot snapshot. No baselines run and no save marker is recorded — the
/// later `restore` then produces output byte-identical to a plain `run`
/// (the crash-soak check diffs exactly that).
int cmd_checkpoint(const CheckpointMeta& meta, Cycles at_cycle) {
  Workload w;
  if (!build_workload(meta.app, meta.frames, &w)) return usage();

  const bool instrument =
      !meta.trace_path.empty() || !meta.report_path.empty();
  TraceRecorder recorder;
  CounterRegistry counters;
  MRtsConfig mrts_config;
  mrts_config.fault = meta.fault;
  MachineConfig machine_config;
  machine_config.prcs = meta.prcs;
  machine_config.cg_fabrics = meta.cg;
  Machine machine(*w.lib, machine_config);
  machine.add_rts(mrts_config);
  MRts& rts = machine.mrts(0);
  if (instrument) machine.attach_observability(&recorder, &counters);

  AppRunProgress progress;
  if (run_application_portion(rts, *w.trace, progress,
                              instrument ? &recorder : nullptr, at_cycle)) {
    std::fprintf(stderr,
                 "error: run completed at cycle %llu, before --at-cycle %llu; "
                 "nothing left to checkpoint\n",
                 static_cast<unsigned long long>(progress.cursor),
                 static_cast<unsigned long long>(at_cycle));
    return 2;
  }
  const std::vector<std::uint8_t> bytes =
      build_snapshot(meta, rts, progress, instrument ? &recorder : nullptr,
                     instrument ? &counters : nullptr);
  if (!write_snapshot_file(meta.checkpoint_path, bytes)) {
    std::fprintf(stderr, "error: cannot write snapshot file '%s'\n",
                 meta.checkpoint_path.c_str());
    return 2;
  }
  std::printf("checkpointed %s at cycle %llu (block %zu/%zu) to %s "
              "(%zu bytes)\n",
              meta.app.c_str(),
              static_cast<unsigned long long>(progress.cursor),
              progress.next_block, w.trace->blocks.size(),
              meta.checkpoint_path.c_str(), bytes.size());
  return 0;
}

/// One `NAME=POLICY[:ARG][@PRIO]` task spec of the run-multi verb.
struct TaskSpec {
  std::string name;
  TenantPolicy policy;
};

/// Strict bounded-unsigned parser (full token, digits only).
bool parse_bounded(const std::string& s, std::uint64_t max, unsigned* out) {
  std::uint64_t v = 0;
  if (!parse_seed(s.c_str(), &v) || v > max) return false;
  *out = static_cast<unsigned>(v);
  return true;
}

/// Parses a run-multi task spec. Malformed specs are input errors (exit 2):
/// the caller prints \p err and bails, nothing is silently defaulted.
bool parse_task_spec(const std::string& spec, TaskSpec* out,
                     std::string* err) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    *err = "expected NAME=POLICY[:ARG][@PRIO]";
    return false;
  }
  out->name = spec.substr(0, eq);
  std::string rest = spec.substr(eq + 1);

  const std::size_t at = rest.find('@');
  if (at != std::string::npos) {
    if (!parse_bounded(rest.substr(at + 1), 1000000, &out->policy.priority)) {
      *err = "bad priority '" + rest.substr(at + 1) +
             "' (expected an integer in [0,1000000])";
      return false;
    }
    rest = rest.substr(0, at);
  }

  const std::size_t colon = rest.find(':');
  const std::string policy = rest.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : rest.substr(colon + 1);
  if (policy == "weighted") {
    out->policy.share = TenantShare::kWeighted;
    out->policy.weight = 1;
    if (!arg.empty() && !parse_bounded(arg, 1000, &out->policy.weight)) {
      *err = "bad weight '" + arg + "' (expected an integer in [0,1000])";
      return false;
    }
    if (out->policy.weight == 0) {
      *err = "weighted tenants need a weight >= 1";
      return false;
    }
  } else if (policy == "reserved") {
    out->policy.share = TenantShare::kReserved;
    const std::size_t plus = arg.find('+');
    if (plus == std::string::npos ||
        !parse_bounded(arg.substr(0, plus), 1000, &out->policy.reserved_prcs) ||
        !parse_bounded(arg.substr(plus + 1), 1000, &out->policy.reserved_cg)) {
      *err = "bad reservation '" + arg + "' (expected <prcs>+<cg>, e.g. 2+1)";
      return false;
    }
    if (out->policy.reserved_prcs + out->policy.reserved_cg == 0) {
      *err = "reserved tenants need a non-empty reservation";
      return false;
    }
  } else if (policy == "best-effort") {
    out->policy.share = TenantShare::kBestEffort;
    if (!arg.empty()) {
      *err = "best-effort takes no ':" + arg + "' argument";
      return false;
    }
  } else {
    *err = "unknown policy '" + policy +
           "' (expected weighted, reserved or best-effort)";
    return false;
  }
  return true;
}

/// Parses the NAME=POLICY[:ARG][@PRIO] spec arguments shared by run-multi
/// and run-cmp (exit-code-2 diagnostics on malformed or duplicate specs).
bool parse_task_specs(const std::vector<std::string>& spec_args,
                      std::vector<TaskSpec>* specs) {
  for (const std::string& raw_spec : spec_args) {
    TaskSpec spec;
    std::string err;
    if (!parse_task_spec(raw_spec, &spec, &err)) {
      std::fprintf(stderr, "error: bad task spec '%s': %s\n",
                   raw_spec.c_str(), err.c_str());
      return false;
    }
    for (const TaskSpec& prev : *specs) {
      if (prev.name == spec.name) {
        std::fprintf(stderr, "error: duplicate task name '%s'\n",
                     spec.name.c_str());
        return false;
      }
    }
    specs->push_back(std::move(spec));
  }
  return true;
}

/// One synthetic kernel + application per task, all built into one combined
/// library so every MRts shares the fabric's data-path table. Trace i is
/// seeded by its spec index, so the same spec list always regenerates the
/// same workload (the run-multi/run-cmp determinism contract).
void build_synthetic_workload(const std::vector<TaskSpec>& specs,
                              unsigned blocks, IseLibrary* combined,
                              std::vector<ApplicationTrace>* traces) {
  std::vector<KernelId> kernels;
  for (const TaskSpec& spec : specs) {
    IseBuildSpec build;
    build.kernel_name = spec.name;
    build.sw_latency = 700;
    build.control_fraction = 0.4;
    build.fg_data_path_names = {spec.name + "_ctrl_fg", spec.name + "_dp_fg"};
    build.cg_data_path_names = {spec.name + "_mac_cg"};
    build.fg_control_dps = 1;
    build.cg_data_dps = 1;
    kernels.push_back(build_kernel_ises(*combined, build));
  }
  traces->resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Rng rng(1000 + i);
    for (unsigned b = 0; b < blocks; ++b) {
      FunctionalBlockInstance inst = make_block_instance(
          FunctionalBlockId{0}, /*macroblocks=*/400, {{kernels[i], 8.0, 25, 0.1}},
          /*entry_gap=*/200, /*tail_gap=*/200, rng);
      stamp_programmed_trigger(inst, *combined);
      (*traces)[i].blocks.push_back(std::move(inst));
    }
  }
}

int cmd_run_multi(unsigned prcs, unsigned cg, unsigned blocks,
                  const std::vector<std::string>& spec_args) {
  std::vector<TaskSpec> specs;
  if (!parse_task_specs(spec_args, &specs)) return 2;

  IseLibrary combined;
  std::vector<ApplicationTrace> traces;
  build_synthetic_workload(specs, blocks, &combined, &traces);

  // One arbitrated machine (sim/machine.h) owns the shared fabric, the
  // arbiter and every tenant-bound MRts, replacing the hand-built
  // FabricManager/FabricArbiter/MRts wiring.
  MachineConfig machine_config;
  machine_config.prcs = prcs;
  machine_config.cg_fabrics = cg;
  machine_config.tenancy = Tenancy::kArbitrated;
  Machine machine(combined, machine_config);
  FabricArbiter& arbiter = machine.arbiter();
  std::vector<FabricArbiter::Registration> regs;
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    regs.push_back(machine.register_tenant(specs[i].name, specs[i].policy));
    if (!regs.back().admitted) continue;  // bounced: reported below
    Task task;
    task.name = specs[i].name;
    task.rts = &machine.add_rts(regs[i].id);
    task.trace = &traces[i];
    task.priority = specs[i].policy.priority;
    task.tenant = regs[i].id;
    tasks.push_back(std::move(task));
  }
  const MultiTenantResult result = run_multi_tenant(tasks, &arbiter);

  TextTable table({"task", "policy", "prio", "status", "blocks", "Mcycles",
                   "blocks/Mcyc", "evicted others", "evicted by others",
                   "quota redirects"});
  auto policy_text = [](const TenantPolicy& p) {
    std::string policy = std::string(to_string(p.share));
    if (p.share == TenantShare::kWeighted) {
      policy += ":" + std::to_string(p.weight);
    } else if (p.share == TenantShare::kReserved) {
      policy += ":" + std::to_string(p.reserved_prcs) + "+" +
                std::to_string(p.reserved_cg);
    }
    return policy;
  };
  std::vector<double> throughputs;
  std::uint64_t total_blocks = 0;
  std::vector<std::size_t> bounced;
  for (std::size_t i = 0, next_result = 0; i < specs.size(); ++i) {
    const TenantPolicy& p = specs[i].policy;
    if (!regs[i].admitted) {
      bounced.push_back(i);
      continue;
    }
    const MultiTenantTaskResult& tr = result.tasks[next_result++];
    const TenantStats& stats = arbiter.stats(regs[i].id);
    const double throughput =
        tr.run.active_cycles == 0
            ? 0.0
            : static_cast<double>(tr.run.block_cycles.size()) * 1e6 /
                  static_cast<double>(tr.run.active_cycles);
    throughputs.push_back(throughput);
    total_blocks += tr.run.block_cycles.size();
    table.add_values(specs[i].name, policy_text(p), p.priority, "ok",
                     tr.run.block_cycles.size(),
                     format_mcycles(tr.run.active_cycles),
                     format_double(throughput, 2), stats.evictions_caused,
                     stats.evictions_suffered, stats.quota_redirects);
  }
  // Bounced-tenant diagnostics sort by name (not registration order): the
  // rows are stable under spec reordering, so smoke-test diffs don't churn.
  std::sort(bounced.begin(), bounced.end(),
            [&specs](std::size_t a, std::size_t b) {
              return specs[a].name < specs[b].name;
            });
  for (const std::size_t i : bounced) {
    table.add_values(specs[i].name, policy_text(specs[i].policy),
                     specs[i].policy.priority, "bounced: " + regs[i].reason, 0,
                     "-", "-", "-", "-", "-");
  }
  std::printf("%u PRCs + %u CG fabrics, %u blocks/task, %zu task(s):\n%s",
              prcs, cg, blocks, specs.size(), table.render().c_str());
  if (result.total_cycles > 0) {
    std::printf("\ntotal %s Mcycles, aggregate throughput %.2f blocks/Mcyc, "
                "Jain fairness index %.4f\n",
                format_mcycles(result.total_cycles).c_str(),
                static_cast<double>(total_blocks) * 1e6 /
                    static_cast<double>(result.total_cycles),
                jain_fairness_index(throughputs));
  }
  return 0;
}

int cmd_run_cmp(unsigned cores, unsigned prcs, unsigned cg, unsigned blocks,
                unsigned hop_stride, unsigned transfers_per_block,
                const std::vector<std::string>& spec_args) {
  if (spec_args.size() > cores) {
    std::fprintf(stderr,
                 "error: %zu task spec(s) for %u core(s) (one task per core)\n",
                 spec_args.size(), cores);
    return 2;
  }
  // Spec i runs on core i; unspecified cores run the default
  // `core<i>=weighted:1` tenant. Duplicate names (including collisions with
  // the defaults) are caught by parse_task_specs.
  std::vector<std::string> padded = spec_args;
  for (std::size_t i = padded.size(); i < cores; ++i) {
    padded.push_back("core" + std::to_string(i) + "=weighted:1");
  }
  std::vector<TaskSpec> specs;
  if (!parse_task_specs(padded, &specs)) return 2;

  IseLibrary combined;
  std::vector<ApplicationTrace> traces;
  build_synthetic_workload(specs, blocks, &combined, &traces);

  MachineConfig machine_config;
  machine_config.cores = cores;
  machine_config.prcs = prcs;
  machine_config.cg_fabrics = cg;
  machine_config.tenancy = Tenancy::kArbitrated;
  machine_config.interconnect =
      InterconnectParams::linear_chain(cores, hop_stride);
  Machine machine(combined, machine_config);
  const Interconnect& icn = machine.interconnect();

  std::vector<FabricArbiter::Registration> regs;
  std::vector<CmpCore> cmp_cores(cores);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    regs.push_back(machine.register_tenant(specs[i].name, specs[i].policy));
    if (!regs.back().admitted) continue;  // bounced: core idles, reported below
    Task task;
    task.name = specs[i].name;
    task.rts = &machine.add_rts(regs[i].id);
    task.trace = &traces[i];
    task.priority = specs[i].policy.priority;
    task.tenant = regs[i].id;
    cmp_cores[i].tasks.push_back(std::move(task));
  }
  CmpParams params;
  params.transfers_per_block = transfers_per_block;
  params.fabric = &machine.fabric();
  const CmpResult result = run_cmp(cmp_cores, icn, &machine.arbiter(), params);

  TextTable table({"core", "hops", "task", "status", "blocks", "Mcycles",
                   "blocks/Mcyc", "xfer cyc", "port wait"});
  std::vector<double> throughputs;
  std::uint64_t total_blocks = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const unsigned hops = icn.core_distance(static_cast<unsigned>(i));
    if (!regs[i].admitted) {
      table.add_values(i, hops, specs[i].name, "bounced: " + regs[i].reason,
                       0, "-", "-", "-", "-");
      throughputs.push_back(0.0);
      continue;
    }
    const CmpCoreResult& cr = result.cores[i];
    const TaskRunResult& tr = cr.run.tasks[0].run;
    const double throughput =
        tr.active_cycles == 0
            ? 0.0
            : static_cast<double>(tr.block_cycles.size()) * 1e6 /
                  static_cast<double>(tr.active_cycles);
    throughputs.push_back(throughput);
    total_blocks += tr.block_cycles.size();
    table.add_values(i, hops, specs[i].name, "ok", tr.block_cycles.size(),
                     format_mcycles(tr.active_cycles),
                     format_double(throughput, 2), cr.interconnect_cycles,
                     cr.port_wait_cycles);
  }
  std::printf("%u core(s) sharing %u PRCs + %u CG fabrics, %u blocks/core, "
              "hop stride %u, %u transfer(s)/block:\n%s",
              cores, prcs, cg, blocks, hop_stride, transfers_per_block,
              table.render().c_str());
  if (result.total_cycles > 0) {
    std::printf("\nmakespan %s Mcycles, aggregate throughput %.2f "
                "blocks/Mcyc, Jain fairness index %.4f\n",
                format_mcycles(result.total_cycles).c_str(),
                static_cast<double>(total_blocks) * 1e6 /
                    static_cast<double>(result.total_cycles),
                jain_fairness_index(throughputs));
  }
  return 0;
}

int cmd_trace_summary(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 2;
  }
  const TraceSummary summary = summarize_trace_jsonl(in);
  if (summary.parse_errors > 0) {
    std::fprintf(stderr,
                 "error: %zu malformed line(s) in '%s' (first at line %zu)\n",
                 summary.parse_errors, path.c_str(), summary.first_bad_line);
    return 2;
  }
  std::printf("%zu events", summary.total_events);
  if (summary.total_events > 0) {
    std::printf(", cycles %llu..%llu",
                static_cast<unsigned long long>(summary.first_cycle),
                static_cast<unsigned long long>(summary.last_cycle));
  }
  std::printf("\n");
  if (summary.span_durations.count() > 0) {
    const Histogram& h = summary.span_durations;
    std::printf(
        "span durations: %llu spans, p50 %s, p90 %s, p99 %s, max %s cycles\n",
        static_cast<unsigned long long>(h.count()),
        format_double(h.percentile(0.50), 0).c_str(),
        format_double(h.percentile(0.90), 0).c_str(),
        format_double(h.percentile(0.99), 0).c_str(),
        format_double(h.max(), 0).c_str());
  }
  // Rows sort by kind *name*, not enum order: the table then matches the
  // (alphabetical) counter table — e.g. the selector.cache row lands next to
  // the selector.cache.{hit,miss} counters — and stays stable when new enum
  // values are appended. Pinned by tests/test_profit_cache.cpp.
  std::map<std::string, std::size_t> rows;
  for (std::size_t i = 0; i < kNumTraceEventKinds; ++i) {
    if (summary.per_kind[i] == 0) continue;
    rows[to_string(static_cast<TraceEventKind>(i))] = summary.per_kind[i];
  }
  TextTable table({"kind", "events"});
  for (const auto& [kind, events] : rows) table.add_values(kind, events);
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_trace_analyze(const std::string& path, const std::string& out_path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 2;
  }
  const ParsedTrace parsed = parse_trace_jsonl(in);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: malformed trace line %zu in '%s'\n",
                 parsed.bad_line, path.c_str());
    return 2;
  }
  const obs::RunReport report = obs::analyze_trace(parsed.events);
  if (out_path.empty()) {
    std::ostringstream os;
    obs::write_report_markdown(os, report);
    std::printf("%s", os.str().c_str());
    return 0;
  }
  if (!obs::write_report_file(out_path, report)) {
    std::fprintf(stderr, "error: cannot write report file '%s'\n",
                 out_path.c_str());
    return 2;
  }
  std::printf("wrote run report (%zu events analyzed) to %s\n",
              report.total_events, out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "help") {
    std::fputs(cli_spec().help().c_str(), stdout);
    return 0;
  }
  // `mrts_cli <verb> --help` prints the verb's table-generated help and
  // exits 0, before any argument validation.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      const CliVerb* verb = cli_spec().verb(command);
      if (verb == nullptr) return usage();
      std::fputs(cli_spec().verb_help(*verb).c_str(), stdout);
      return 0;
    }
  }
  try {
    if (command == "info") {
      if (argc != 3) return usage();
      return cmd_info(argv[2]);
    }
    if (command == "select") {
      if (argc < 6) return usage();
      return cmd_select(argv[2],
                        static_cast<unsigned>(std::atoi(argv[3])),
                        static_cast<unsigned>(std::atoi(argv[4])), argv + 5,
                        argc - 5);
    }
    if (command == "run" || command == "checkpoint") {
      const bool checkpoint_verb = command == "checkpoint";
      std::string trace_path;
      std::string report_path;
      double fault_rate = 0.0;
      std::uint64_t fault_seed = 42;
      unsigned max_retries = 3;
      std::uint64_t checkpoint_every = 0;
      std::string checkpoint_path;
      std::uint64_t at_cycle = 0;
      std::vector<std::string> positional;
      // Flag recognition comes from the spec table (run and checkpoint have
      // different flag sets there); only the value validation lives here.
      const CliVerb& verb_spec = *cli_spec().verb(command);
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.empty() || arg[0] != '-') {
          positional.push_back(arg);
          continue;
        }
        const CliFlag* flag = CliSpec::flag(verb_spec, arg);
        if (flag == nullptr) return usage();  // unknown option for this verb
        const char* value = nullptr;
        if (!flag->value.empty()) {
          if (i + 1 >= argc) return usage();
          value = argv[++i];
        }
        if (arg == "--trace") {
          if (!trace_path.empty()) return usage();
          trace_path = value;
        } else if (arg == "--report") {
          if (!report_path.empty()) return usage();
          report_path = value;
        } else if (arg == "--fault-rate") {
          if (!parse_probability(value, &fault_rate)) {
            std::fprintf(stderr,
                         "error: invalid --fault-rate '%s' (expected a "
                         "probability in [0,1])\n",
                         value);
            return 2;
          }
        } else if (arg == "--fault-seed") {
          if (!parse_seed(value, &fault_seed)) {
            std::fprintf(stderr,
                         "error: invalid --fault-seed '%s' (expected an "
                         "unsigned 64-bit integer)\n",
                         value);
            return 2;
          }
        } else if (arg == "--max-retries") {
          if (!parse_retries(value, &max_retries)) {
            std::fprintf(stderr,
                         "error: invalid --max-retries '%s' (expected an "
                         "integer in [0,1000])\n",
                         value);
            return 2;
          }
        } else if (arg == "--no-bb-cache") {
          set_fastpath_enabled(false);
        } else if (arg == "--checkpoint-every") {
          if (!parse_seed(value, &checkpoint_every) || checkpoint_every == 0) {
            std::fprintf(stderr,
                         "error: invalid --checkpoint-every '%s' (expected a "
                         "positive cycle count)\n",
                         value);
            return 2;
          }
        } else if (arg == "--checkpoint") {
          if (!checkpoint_path.empty()) return usage();
          checkpoint_path = value;
        } else if (arg == "--at-cycle") {
          if (!parse_seed(value, &at_cycle) || at_cycle == 0) {
            std::fprintf(stderr,
                         "error: invalid --at-cycle '%s' (expected a "
                         "positive cycle count)\n",
                         value);
            return 2;
          }
        } else if (arg == "--out") {
          if (!checkpoint_path.empty()) return usage();
          checkpoint_path = value;
        } else {
          return usage();  // flag in the table but not handled: keep in sync
        }
      }
      if (positional.empty() || positional.size() > 4) return usage();
      // --checkpoint-every/--checkpoint come as a pair; checkpoint needs
      // both --at-cycle and --out.
      if (!checkpoint_verb &&
          (checkpoint_every > 0) != !checkpoint_path.empty()) {
        return usage();
      }
      if (checkpoint_verb && (at_cycle == 0 || checkpoint_path.empty())) {
        return usage();
      }
      CheckpointMeta meta;
      meta.app = positional[0];
      meta.prcs = positional.size() > 1
                      ? static_cast<unsigned>(std::atoi(positional[1].c_str()))
                      : 2;
      meta.cg = positional.size() > 2
                    ? static_cast<unsigned>(std::atoi(positional[2].c_str()))
                    : 2;
      meta.frames =
          positional.size() > 3
              ? static_cast<unsigned>(std::atoi(positional[3].c_str()))
              : 8;
      if (fault_rate > 0.0) {  // default meta.fault: fault-free
        meta.fault =
            FaultModelConfig::uniform(fault_rate, fault_seed, max_retries);
      }
      meta.trace_path = trace_path;
      meta.report_path = report_path;
      meta.checkpoint_every = checkpoint_every;
      meta.checkpoint_path = checkpoint_path;
      if (checkpoint_verb) return cmd_checkpoint(meta, at_cycle);
      return run_compare(meta, nullptr);
    }
    if (command == "restore") {
      if (argc != 3) return usage();
      std::vector<std::uint8_t> bytes;
      std::string err;
      if (!read_snapshot_file(argv[2], &bytes, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 2;
      }
      // Throws SnapshotError (exit 2 below) on truncated/corrupt/
      // wrong-version images, before any runtime state exists to damage.
      const CheckpointMeta meta = read_snapshot_meta(bytes);
      return run_compare(meta, &bytes);
    }
    if (command == "run-multi") {
      if (argc < 6) return usage();
      unsigned prcs = 0;
      unsigned cg = 0;
      unsigned blocks = 0;
      if (!parse_bounded(argv[2], 1024, &prcs) || prcs == 0 ||
          !parse_bounded(argv[3], 1024, &cg) || cg == 0 ||
          !parse_bounded(argv[4], 100000, &blocks) || blocks == 0) {
        std::fprintf(stderr,
                     "error: invalid fabric/block counts '%s %s %s' "
                     "(expected positive integers)\n",
                     argv[2], argv[3], argv[4]);
        return 2;
      }
      std::vector<std::string> specs;
      for (int i = 5; i < argc; ++i) {
        if (argv[i][0] == '-') return usage();  // no options defined
        specs.emplace_back(argv[i]);
      }
      return cmd_run_multi(prcs, cg, blocks, specs);
    }
    if (command == "run-cmp") {
      if (argc < 6) return usage();
      unsigned cores = 0;
      unsigned prcs = 0;
      unsigned cg = 0;
      unsigned blocks = 0;
      if (!parse_bounded(argv[2], 1024, &cores) || cores == 0 ||
          !parse_bounded(argv[3], 1024, &prcs) || prcs == 0 ||
          !parse_bounded(argv[4], 1024, &cg) || cg == 0 ||
          !parse_bounded(argv[5], 100000, &blocks) || blocks == 0) {
        std::fprintf(stderr,
                     "error: invalid core/fabric/block counts '%s %s %s %s' "
                     "(expected positive integers)\n",
                     argv[2], argv[3], argv[4], argv[5]);
        return 2;
      }
      unsigned hop_stride = 0;
      unsigned transfers_per_block = 2;
      std::vector<std::string> specs;
      for (int i = 6; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--hop-stride" || arg == "--transfers-per-block") {
          if (i + 1 >= argc) return usage();
          unsigned* target =
              arg == "--hop-stride" ? &hop_stride : &transfers_per_block;
          if (!parse_bounded(argv[i + 1], 1024, target)) {
            std::fprintf(stderr, "error: invalid %s '%s' (expected an "
                         "integer in [0, 1024])\n",
                         arg.c_str(), argv[i + 1]);
            return 2;
          }
          ++i;
        } else if (arg[0] == '-') {
          return usage();
        } else {
          specs.push_back(arg);
        }
      }
      return cmd_run_cmp(cores, prcs, cg, blocks, hop_stride,
                         transfers_per_block, specs);
    }
    if (command == "trace-summary") {
      if (argc != 3) return usage();
      return cmd_trace_summary(argv[2]);
    }
    if (command == "trace-analyze") {
      if (argc < 3) return usage();
      std::string out_path;
      if (argc == 5) {
        if (std::string(argv[3]) != "--out") return usage();
        out_path = argv[4];
      } else if (argc != 3) {
        return usage();
      }
      return cmd_trace_analyze(argv[2], out_path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
