#!/usr/bin/env python3
"""Compile-checker for fenced code snippets in the serving docs.

Extracts every fenced code block from docs/SERVING.md and docs/PROTOCOL.md
(plus docs/CLI.md) and verifies the blocks cannot rot:

  * ``cpp`` / ``c++`` blocks are compiled with ``-fsyntax-only`` against the
    repo's ``src/`` include root. A block that is a complete translation
    unit (contains ``int main``) compiles as-is; fragments are wrapped in a
    function body.
  * ``sh`` / ``bash`` / ``shell`` blocks are syntax-checked with ``sh -n``.
    Lines are statements for the checker even when the doc shows them as a
    session (a trailing ``&`` or a bare binary name is fine — ``sh -n``
    parses, it does not execute).
  * untagged fences (ASCII diagrams, hex dumps, transcripts) are skipped.

Exit code 0 = every snippet parses/compiles, 1 = at least one failure
(printed as ``file:line: message`` with the compiler output). Stdlib only:

    python3 tools/check_doc_snippets.py [--compiler c++]
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = ("docs/SERVING.md", "docs/PROTOCOL.md", "docs/CLI.md")
FENCE_RE = re.compile(r"^(```|~~~)\s*([A-Za-z+]*)\s*$")

CPP_TAGS = {"cpp", "c++"}
SH_TAGS = {"sh", "bash", "shell"}


def extract_snippets(path: Path) -> list[tuple[int, str, str]]:
    """(start line, language tag, body) for every tagged fenced block."""
    snippets: list[tuple[int, str, str]] = []
    tag = None
    start = 0
    body: list[str] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        m = FENCE_RE.match(line)
        if m and tag is None:
            tag = m.group(2).lower()
            start = lineno
            body = []
        elif m:
            if tag:
                snippets.append((start, tag, "\n".join(body) + "\n"))
            tag = None
        elif tag is not None:
            body.append(line)
    return snippets


def check_cpp(body: str, compiler: str, workdir: Path) -> str | None:
    """None on success, compiler output on failure."""
    if "int main" not in body:
        # Fragment: give it includes and a function body to live in.
        body = (
            '#include "serve/client.h"\n#include "serve/serve_core.h"\n'
            "void snippet() {\n" + body + "}\n"
        )
    source = workdir / "snippet.cpp"
    source.write_text(body, encoding="utf-8")
    proc = subprocess.run(
        [
            compiler,
            "-std=c++20",
            "-fsyntax-only",
            f"-I{REPO_ROOT / 'src'}",
            str(source),
        ],
        capture_output=True,
        text=True,
    )
    return None if proc.returncode == 0 else proc.stderr.strip()


def check_sh(body: str) -> str | None:
    proc = subprocess.run(
        ["sh", "-n"], input=body, capture_output=True, text=True
    )
    return None if proc.returncode == 0 else proc.stderr.strip()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--compiler",
        default="c++",
        help="C++ compiler used for -fsyntax-only checks (default: c++)",
    )
    args = parser.parse_args()

    if shutil.which(args.compiler) is None:
        print(f"error: compiler '{args.compiler}' not found", file=sys.stderr)
        return 1

    errors: list[str] = []
    checked = 0
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        for rel in DOC_FILES:
            path = REPO_ROOT / rel
            if not path.is_file():
                errors.append(f"{rel}: file missing")
                continue
            for lineno, tag, body in extract_snippets(path):
                if tag in CPP_TAGS:
                    failure = check_cpp(body, args.compiler, workdir)
                elif tag in SH_TAGS:
                    failure = check_sh(body)
                else:
                    continue
                checked += 1
                if failure is not None:
                    errors.append(f"{rel}:{lineno}: {tag} snippet fails:\n{failure}")

    for e in errors:
        print(e, file=sys.stderr)
    print(
        f"checked {checked} doc snippets: "
        f"{'OK' if not errors else f'{len(errors)} failure(s)'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
