#!/usr/bin/env python3
"""Link-and-anchor checker for the repo's markdown documentation.

Walks README.md and docs/**/*.md and validates every markdown link:

  * relative file links must point at a file that exists in the repo;
  * fragment links (``file.md#section`` or in-page ``#section``) must match
    a heading in the target file, using GitHub's anchor-slug rules;
  * absolute URLs (http/https/mailto) are accepted without network access —
    CI must stay hermetic.

Exit code 0 = all links resolve, 1 = at least one broken link (each printed
as ``file:line: message``). Stdlib only; run from anywhere:

    python3 tools/check_markdown_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excludes images by allowing the leading '!' to fail the
# match only for the link part we validate anyway (image paths are checked
# the same way, which is what we want).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor transformation."""
    # Drop inline markdown: code spans, emphasis markers and link syntax.
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    # Keep word characters, spaces and hyphens; everything else vanishes.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_anchors(path: Path) -> set[str]:
    """All valid fragment targets of one markdown file."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    # Explicit <a name="..."> / id="..." anchors also count.
    text = path.read_text(encoding="utf-8")
    for m in re.finditer(r"<a\s+(?:name|id)=\"([^\"]+)\"", text):
        anchors.add(m.group(1))
    return anchors


def markdown_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL_SCHEMES):
                continue
            file_part, _, fragment = target.partition("#")
            if file_part:
                dest = (path.parent / file_part).resolve()
                if not dest.exists():
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                        f"broken link: {target} (no such file)"
                    )
                    continue
            else:
                dest = path
            if fragment and dest.suffix == ".md":
                if dest not in anchor_cache:
                    anchor_cache[dest] = collect_anchors(dest)
                if fragment.lower() not in anchor_cache[dest]:
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                        f"broken anchor: {target} "
                        f"(no heading '#{fragment}' in "
                        f"{dest.relative_to(REPO_ROOT)})"
                    )
    return errors


def main() -> int:
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    files = markdown_files()
    for path in files:
        errors.extend(check_file(path, anchor_cache))
    for e in errors:
        print(e, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files: "
        f"{'OK' if not errors else f'{len(errors)} broken link(s)'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
